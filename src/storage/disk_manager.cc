#include "storage/disk_manager.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/metrics.h"

namespace pbitree {

DiskManager::DiskManager(std::string path, int fd, bool unlink_on_close)
    : path_(std::move(path)), fd_(fd), unlink_on_close_(unlink_on_close) {
  is_free_.resize(1, false);  // header page
}

Result<DiskManager*> DiskManager::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IOError("open(" + path + "): " + std::strerror(errno));
  }
  return new DiskManager(path, fd, /*unlink_on_close=*/true);
}

Result<DiskManager*> DiskManager::OpenExisting(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status::IOError("open(" + path + "): " + std::strerror(errno));
  }
  auto* dm = new DiskManager(path, fd, /*unlink_on_close=*/false);
  // Make every existing page addressable; the catalog narrows this to
  // the recorded frontier afterwards.
  off_t size = ::lseek(fd, 0, SEEK_END);
  if (size > 0) {
    dm->SetFrontier(static_cast<PageId>((size + kPageSize - 1) / kPageSize));
  }
  return dm;
}

DiskManager* DiskManager::OpenInMemory() {
  return new DiskManager("", -1, true);
}

DiskManager::~DiskManager() {
  if (fd_ >= 0) {
    ::close(fd_);
    if (!path_.empty() && unlink_on_close_) ::unlink(path_.c_str());
  }
}

void DiskManager::SetFrontier(PageId frontier) {
  std::lock_guard<std::mutex> lk(alloc_mu_);
  if (frontier > next_page_id_.load(std::memory_order_relaxed)) {
    next_page_id_.store(frontier, std::memory_order_release);
    if (is_free_.size() < frontier) is_free_.resize(frontier, false);
  }
}

Result<PageId> DiskManager::AllocatePage() {
  std::lock_guard<std::mutex> lk(alloc_mu_);
  stats_.pages_allocated.fetch_add(1, std::memory_order_relaxed);
  obs::Count(obs::Counter::kPagesAllocated);
  if (!free_list_.empty()) {
    PageId id = free_list_.back();
    free_list_.pop_back();
    is_free_[id] = false;
    return id;
  }
  PageId id = next_page_id_.load(std::memory_order_relaxed);
  if (id == kInvalidPageId) {
    return Status::ResourceExhausted("page id space exhausted");
  }
  next_page_id_.store(id + 1, std::memory_order_release);
  if (is_free_.size() <= id) is_free_.resize(id + 1, false);
  return id;
}

Status DiskManager::FreePage(PageId page_id) {
  std::lock_guard<std::mutex> lk(alloc_mu_);
  if (page_id == 0 ||
      page_id >= next_page_id_.load(std::memory_order_relaxed)) {
    return Status::InvalidArgument("FreePage: bad page id " +
                                   std::to_string(page_id));
  }
  if (is_free_[page_id]) {
    return Status::InvalidArgument("FreePage: double free of page " +
                                   std::to_string(page_id));
  }
  is_free_[page_id] = true;
  free_list_.push_back(page_id);
  stats_.pages_freed.fetch_add(1, std::memory_order_relaxed);
  obs::Count(obs::Counter::kPagesFreed);
  return Status::OK();
}

Status DiskManager::ReadPage(PageId page_id, char* out) {
  if (page_id >= frontier()) {
    return Status::OutOfRange("ReadPage: page " + std::to_string(page_id) +
                              " beyond frontier");
  }
  stats_.page_reads.fetch_add(1, std::memory_order_relaxed);
  obs::Count(obs::Counter::kPageReads);
  if (fd_ < 0) {
    const size_t off = static_cast<size_t>(page_id) * kPageSize;
    {
      std::shared_lock<std::shared_mutex> lk(mem_mu_);
      if (mem_.size() >= off + kPageSize) {
        std::memcpy(out, mem_.data() + off, kPageSize);
        return Status::OK();
      }
    }
    // Page allocated but never written: the store has not grown to
    // cover it yet. Grow under the exclusive lock and serve zeroes.
    std::unique_lock<std::shared_mutex> lk(mem_mu_);
    if (mem_.size() < off + kPageSize) mem_.resize(off + kPageSize, 0);
    std::memcpy(out, mem_.data() + off, kPageSize);
    return Status::OK();
  }
  ssize_t n = ::pread(fd_, out, kPageSize,
                      static_cast<off_t>(page_id) * kPageSize);
  if (n < 0) return Status::IOError(std::string("pread: ") + std::strerror(errno));
  if (static_cast<size_t>(n) < kPageSize) {
    // Page was allocated but never written; treat as zeroes.
    std::memset(out + n, 0, kPageSize - n);
  }
  return Status::OK();
}

Status DiskManager::WritePage(PageId page_id, const char* in) {
  if (page_id >= frontier()) {
    return Status::OutOfRange("WritePage: page " + std::to_string(page_id) +
                              " beyond frontier");
  }
  stats_.page_writes.fetch_add(1, std::memory_order_relaxed);
  obs::Count(obs::Counter::kPageWrites);
  if (fd_ < 0) {
    const size_t off = static_cast<size_t>(page_id) * kPageSize;
    {
      std::shared_lock<std::shared_mutex> lk(mem_mu_);
      if (mem_.size() >= off + kPageSize) {
        std::memcpy(mem_.data() + off, in, kPageSize);
        return Status::OK();
      }
    }
    std::unique_lock<std::shared_mutex> lk(mem_mu_);
    if (mem_.size() < off + kPageSize) mem_.resize(off + kPageSize, 0);
    std::memcpy(mem_.data() + off, in, kPageSize);
    return Status::OK();
  }
  ssize_t n = ::pwrite(fd_, in, kPageSize,
                       static_cast<off_t>(page_id) * kPageSize);
  if (n < 0 || static_cast<size_t>(n) != kPageSize) {
    return Status::IOError(std::string("pwrite: ") + std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace pbitree
