#include "storage/disk_manager.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace pbitree {

DiskManager::DiskManager(std::string path, int fd, bool unlink_on_close)
    : path_(std::move(path)), fd_(fd), unlink_on_close_(unlink_on_close) {
  is_free_.resize(1, false);  // header page
}

Result<DiskManager*> DiskManager::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IOError("open(" + path + "): " + std::strerror(errno));
  }
  return new DiskManager(path, fd, /*unlink_on_close=*/true);
}

Result<DiskManager*> DiskManager::OpenExisting(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status::IOError("open(" + path + "): " + std::strerror(errno));
  }
  auto* dm = new DiskManager(path, fd, /*unlink_on_close=*/false);
  // Make every existing page addressable; the catalog narrows this to
  // the recorded frontier afterwards.
  off_t size = ::lseek(fd, 0, SEEK_END);
  if (size > 0) {
    dm->SetFrontier(static_cast<PageId>((size + kPageSize - 1) / kPageSize));
  }
  return dm;
}

DiskManager* DiskManager::OpenInMemory() {
  return new DiskManager("", -1, true);
}

DiskManager::~DiskManager() {
  if (fd_ >= 0) {
    ::close(fd_);
    if (!path_.empty() && unlink_on_close_) ::unlink(path_.c_str());
  }
}

void DiskManager::SetFrontier(PageId frontier) {
  if (frontier > next_page_id_) {
    next_page_id_ = frontier;
    if (is_free_.size() < frontier) is_free_.resize(frontier, false);
  }
}

Result<PageId> DiskManager::AllocatePage() {
  ++stats_.pages_allocated;
  if (!free_list_.empty()) {
    PageId id = free_list_.back();
    free_list_.pop_back();
    is_free_[id] = false;
    return id;
  }
  PageId id = next_page_id_++;
  if (id == kInvalidPageId) {
    return Status::ResourceExhausted("page id space exhausted");
  }
  if (is_free_.size() <= id) is_free_.resize(id + 1, false);
  return id;
}

Status DiskManager::FreePage(PageId page_id) {
  if (page_id == 0 || page_id >= next_page_id_) {
    return Status::InvalidArgument("FreePage: bad page id " +
                                   std::to_string(page_id));
  }
  if (is_free_[page_id]) {
    return Status::InvalidArgument("FreePage: double free of page " +
                                   std::to_string(page_id));
  }
  is_free_[page_id] = true;
  free_list_.push_back(page_id);
  ++stats_.pages_freed;
  return Status::OK();
}

Status DiskManager::EnsureCapacity(PageId page_id) {
  size_t need = (static_cast<size_t>(page_id) + 1) * kPageSize;
  if (fd_ < 0) {
    if (mem_.size() < need) mem_.resize(need, 0);
    return Status::OK();
  }
  return Status::OK();  // real files are extended by pwrite
}

Status DiskManager::ReadPage(PageId page_id, char* out) {
  if (page_id >= next_page_id_) {
    return Status::OutOfRange("ReadPage: page " + std::to_string(page_id) +
                              " beyond frontier");
  }
  ++stats_.page_reads;
  if (fd_ < 0) {
    PBITREE_RETURN_IF_ERROR(EnsureCapacity(page_id));
    std::memcpy(out, mem_.data() + static_cast<size_t>(page_id) * kPageSize,
                kPageSize);
    return Status::OK();
  }
  ssize_t n = ::pread(fd_, out, kPageSize,
                      static_cast<off_t>(page_id) * kPageSize);
  if (n < 0) return Status::IOError(std::string("pread: ") + std::strerror(errno));
  if (static_cast<size_t>(n) < kPageSize) {
    // Page was allocated but never written; treat as zeroes.
    std::memset(out + n, 0, kPageSize - n);
  }
  return Status::OK();
}

Status DiskManager::WritePage(PageId page_id, const char* in) {
  if (page_id >= next_page_id_) {
    return Status::OutOfRange("WritePage: page " + std::to_string(page_id) +
                              " beyond frontier");
  }
  ++stats_.page_writes;
  if (fd_ < 0) {
    PBITREE_RETURN_IF_ERROR(EnsureCapacity(page_id));
    std::memcpy(mem_.data() + static_cast<size_t>(page_id) * kPageSize, in,
                kPageSize);
    return Status::OK();
  }
  ssize_t n = ::pwrite(fd_, in, kPageSize,
                       static_cast<off_t>(page_id) * kPageSize);
  if (n < 0 || static_cast<size_t>(n) != kPageSize) {
    return Status::IOError(std::string("pwrite: ") + std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace pbitree
