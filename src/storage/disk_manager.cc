#include "storage/disk_manager.h"

#include <chrono>
#include <thread>

#include "common/crc32c.h"
#include "obs/metrics.h"

namespace pbitree {

namespace {

/// Wraps `backend` in a FaultInjectingBackend when PBITREE_FAULT_SCHEDULE
/// is set — every database opened by this process then runs against the
/// same deterministic fault schedule (how CI exercises the whole test
/// suite under transient faults).
std::unique_ptr<IoBackend> MaybeInjectFaults(std::unique_ptr<IoBackend> backend) {
  if (auto schedule = FaultSchedule::FromEnv()) {
    return std::make_unique<FaultInjectingBackend>(std::move(backend),
                                                   *schedule);
  }
  return backend;
}

}  // namespace

DiskManager::DiskManager(std::unique_ptr<IoBackend> backend)
    : backend_(std::move(backend)) {
  is_free_.resize(1, false);  // header page
}

StatusOr<DiskManager*> DiskManager::Open(const std::string& path) {
  auto backend = FileIoBackend::Open(path, /*truncate=*/true,
                                     /*unlink_on_close=*/true);
  PBITREE_RETURN_IF_ERROR(backend.status());
  return new DiskManager(MaybeInjectFaults(std::move(*backend)));
}

StatusOr<DiskManager*> DiskManager::OpenExisting(const std::string& path) {
  auto backend = FileIoBackend::Open(path, /*truncate=*/false,
                                     /*unlink_on_close=*/false);
  PBITREE_RETURN_IF_ERROR(backend.status());
  return OpenWithBackend(std::move(*backend), /*restore_frontier=*/true);
}

DiskManager* DiskManager::OpenInMemory() {
  return new DiskManager(MaybeInjectFaults(std::make_unique<MemIoBackend>()));
}

StatusOr<DiskManager*> DiskManager::OpenWithBackend(
    std::unique_ptr<IoBackend> backend, bool restore_frontier) {
  // Make every existing page addressable; the catalog narrows this to
  // the recorded frontier afterwards.
  PageId size = 0;
  if (restore_frontier) {
    auto pages = backend->SizeInPages();
    PBITREE_RETURN_IF_ERROR(pages.status());
    size = *pages;
  }
  auto* dm = new DiskManager(MaybeInjectFaults(std::move(backend)));
  if (size > 0) dm->SetFrontier(size);
  return dm;
}

DiskManager::~DiskManager() = default;

void DiskManager::SetFrontier(PageId frontier) {
  std::lock_guard<std::mutex> lk(alloc_mu_);
  if (frontier > next_page_id_.load(std::memory_order_relaxed)) {
    next_page_id_.store(frontier, std::memory_order_release);
    if (is_free_.size() < frontier) is_free_.resize(frontier, false);
  }
}

StatusOr<PageId> DiskManager::AllocatePage() {
  std::lock_guard<std::mutex> lk(alloc_mu_);
  PageId id;
  bool reused = false;
  if (!free_list_.empty()) {
    id = free_list_.back();
    free_list_.pop_back();
    is_free_[id] = false;
    reused = true;
  } else {
    id = next_page_id_.load(std::memory_order_relaxed);
    if (id == kInvalidPageId) {
      return Status::ResourceExhausted("page id space exhausted");
    }
    next_page_id_.store(id + 1, std::memory_order_release);
    if (is_free_.size() <= id) is_free_.resize(id + 1, false);
  }
  Status bs = backend_->Allocate(id);
  if (!bs.ok()) {
    // Roll back so a later attempt can hand out the same id.
    if (reused) {
      is_free_[id] = true;
      free_list_.push_back(id);
    } else {
      next_page_id_.store(id, std::memory_order_release);
    }
    return bs;
  }
  stats_.pages_allocated.fetch_add(1, std::memory_order_relaxed);
  obs::Count(obs::Counter::kPagesAllocated);
  return id;
}

Status DiskManager::FreePage(PageId page_id) {
  std::lock_guard<std::mutex> lk(alloc_mu_);
  if (page_id == 0 ||
      page_id >= next_page_id_.load(std::memory_order_relaxed)) {
    return Status::InvalidArgument("FreePage: bad page id " +
                                   std::to_string(page_id));
  }
  if (is_free_[page_id]) {
    return Status::InvalidArgument("FreePage: double free of page " +
                                   std::to_string(page_id));
  }
  PBITREE_RETURN_IF_ERROR(backend_->Free(page_id));
  is_free_[page_id] = true;
  free_list_.push_back(page_id);
  stats_.pages_freed.fetch_add(1, std::memory_order_relaxed);
  obs::Count(obs::Counter::kPagesFreed);
  {
    // A reused page id must not inherit the old occupant's checksum.
    std::unique_lock<std::shared_mutex> lk2(crc_mu_);
    page_crc_.erase(page_id);
  }
  return Status::OK();
}

Status DiskManager::WithRetry(const char* what, PageId page_id,
                              const std::function<Status()>& op) {
  Status s;
  uint32_t backoff_us = retry_.backoff_initial_us;
  for (int attempt = 0; attempt < retry_.max_attempts; ++attempt) {
    if (attempt > 0) {
      obs::Count(obs::Counter::kIoRetries);
      if (backoff_us > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
        backoff_us = std::min(backoff_us * 2, retry_.backoff_max_us);
      }
    }
    s = op();
    // Retry only transient-looking failures; kCorruption means the
    // bytes arrived and are wrong — re-reading returns the same bytes.
    if (s.ok() || s.code() != StatusCode::kIOError) return s;
  }
  return Status::RetryExhausted(std::string(what) + " of page " +
                                std::to_string(page_id) + " failed after " +
                                std::to_string(retry_.max_attempts) +
                                " attempts: " + s.ToString());
}

Status DiskManager::ReadPage(PageId page_id, char* out) {
  if (page_id >= frontier()) {
    return Status::OutOfRange("ReadPage: page " + std::to_string(page_id) +
                              " beyond frontier");
  }
  // Logical page reads count once per call regardless of retries, so
  // I/O-count experiments are unchanged by the retry layer.
  stats_.page_reads.fetch_add(1, std::memory_order_relaxed);
  obs::Count(obs::Counter::kPageReads);
  return ReadPageVerified(page_id, out);
}

Status DiskManager::ReadPagePrefetch(PageId page_id, char* out) {
  if (page_id >= frontier()) {
    return Status::OutOfRange("ReadPagePrefetch: page " +
                              std::to_string(page_id) + " beyond frontier");
  }
  return ReadPageVerified(page_id, out);
}

void DiskManager::CountDeferredRead() {
  stats_.page_reads.fetch_add(1, std::memory_order_relaxed);
  obs::Count(obs::Counter::kPageReads);
}

Status DiskManager::ReadPageVerified(PageId page_id, char* out) {
  uint32_t expected = 0;
  bool have_crc = false;
  {
    std::shared_lock<std::shared_mutex> lk(crc_mu_);
    auto it = page_crc_.find(page_id);
    if (it != page_crc_.end()) {
      expected = it->second;
      have_crc = true;
    }
  }

  return WithRetry("read", page_id, [&]() -> Status {
    PBITREE_RETURN_IF_ERROR(backend_->ReadPage(page_id, out));
    // No recorded checksum (never written by this process, e.g. a page
    // from a reopened database or one allocated but not yet written):
    // nothing to verify against.
    if (have_crc && Crc32c(out, kPageSize) != expected) {
      obs::Count(obs::Counter::kIoChecksumFailures);
      return Status::Corruption("checksum mismatch on page " +
                                std::to_string(page_id) +
                                " (torn or corrupted write)");
    }
    return Status::OK();
  });
}

Status DiskManager::WritePage(PageId page_id, const char* in) {
  if (page_id >= frontier()) {
    return Status::OutOfRange("WritePage: page " + std::to_string(page_id) +
                              " beyond frontier");
  }
  stats_.page_writes.fetch_add(1, std::memory_order_relaxed);
  obs::Count(obs::Counter::kPageWrites);

  Status s = WithRetry("write", page_id,
                       [&] { return backend_->WritePage(page_id, in); });
  std::unique_lock<std::shared_mutex> lk(crc_mu_);
  if (s.ok()) {
    page_crc_[page_id] = Crc32c(in, kPageSize);
  } else {
    // The page's on-store content is now unknown; drop any stale entry
    // rather than flag a later (possibly fine) read as corruption.
    page_crc_.erase(page_id);
  }
  return s;
}

Status DiskManager::Sync() { return backend_->Sync(); }

}  // namespace pbitree
