#ifndef PBITREE_STORAGE_BUFFER_MANAGER_H_
#define PBITREE_STORAGE_BUFFER_MANAGER_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "storage/async_io.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace pbitree {

/// \brief Buffer-pool statistics (logical requests vs physical I/O).
struct BufferStats {
  uint64_t fetches = 0;      // FetchPage calls
  uint64_t hits = 0;         // served from the pool
  uint64_t misses = 0;       // required a disk read
  uint64_t evictions = 0;    // victim frames reclaimed
  uint64_t dirty_writes = 0; // evictions/flushes that wrote back
  uint64_t prefetch_issued = 0;  // readahead transfers started
  uint64_t prefetch_hits = 0;    // fetches served by a finished prefetch
  uint64_t prefetch_unused = 0;  // prefetched frames dropped unconsumed
  uint64_t write_behinds = 0;    // pages handed to the background flusher

  double HitRate() const {
    return fetches == 0 ? 0.0 : static_cast<double>(hits) / fetches;
  }
};

/// Outcome of BufferManager::StartPrefetch, so scanners can adapt their
/// readahead window to pool pressure instead of guessing.
enum class PrefetchResult {
  kStarted,         // transfer submitted; pair with CancelPrefetch/FetchPage
  kAlreadyPresent,  // page resident or in flight — nothing to do
  kNoFrame,         // pool too pressed to reserve a frame right now
  kDisabled,        // readahead is off (readahead_pages() == 0)
};

/// \brief Fixed-size page cache with clock replacement — the Minibase
/// buffer-manager stand-in.
///
/// All page traffic of every algorithm in the repository flows through a
/// BufferManager, so limiting `pool_pages` faithfully reproduces the
/// paper's "b buffer pages" experiments (Figure 6(e)/(f)).
///
/// Usage protocol: FetchPage/NewPage return a pinned frame; callers must
/// UnpinPage(id, dirty) exactly once per pin. Unpinned frames are
/// eligible for eviction.
///
/// Thread safety: FetchPage/NewPage/UnpinPage/DeletePage may be called
/// concurrently. A single pool latch guards the page table, the clock
/// hand and frame metadata; the actual disk transfer of a miss runs
/// *outside* the latch with the frame marked `io_pending_` (a per-frame
/// latch), so misses on different pages overlap their I/O. A fetch that
/// hits a frame mid-transfer waits on the pool's I/O condition
/// variable. Evicting a dirty victim additionally records its page id
/// in a write-back table until the write lands on disk: a miss (or
/// DeletePage) on that id waits on the same condition variable, so no
/// thread can read a stale on-disk copy — or free the page — while its
/// newest bytes are still in flight. Pinned frames are never
/// victimised, so the data bytes of a returned Page* are only touched
/// by its pin holders.
///
/// Readahead (PBITREE_READAHEAD_PAGES / set_readahead_pages): when
/// enabled, the pool owns an IoWorkerPool and sequential scanners call
/// StartPrefetch to pull upcoming pages into frames while the consumer
/// works on the current one. A prefetched frame holds a *soft*
/// reservation: it is not pinned, so a pressed victim search may still
/// reclaim it (the page is then re-read — and counted — by the eventual
/// fetch), but the ordinary sweep prefers unreserved frames. The
/// logical page-read of a prefetched page is deferred until the
/// consuming FetchPage (DiskManager::CountDeferredRead), and an
/// unconsumed prefetch is evicted on CancelPrefetch, so page-read
/// counts are byte-identical with readahead on or off. (That guarantee
/// assumes the pool holds the working set plus the readahead windows;
/// under heavier pressure prefetch installs pages earlier than the
/// synchronous run would and the clock's victim *choices* — not the
/// per-page accounting — can diverge by a few physical reads. See the
/// parity envelope discussion in docs/ARCHITECTURE.md.) A failed
/// prefetch latches its Status and the next FetchPage of that page
/// returns it — errors surface on the consumer, never silently. The
/// same worker pool runs eviction write-backs (victim bytes are copied
/// out so the frame is reusable immediately) and write-behind flushes
/// (FlushPageAsync) of filled appender pages.
///
/// Maintenance operations (FlushPage/FlushAll/PurgeAll/ResetStats,
/// set_readahead_pages) are phase operations: callers run them while no
/// worker threads are active (between measured runs), which the
/// single-threaded seed behaviour already assumed.
class BufferManager {
 public:
  /// `pool_pages` is the paper's `b` (number of buffer frames). The
  /// initial readahead window comes from PBITREE_READAHEAD_PAGES
  /// (default 0: synchronous I/O only, the seed behaviour).
  BufferManager(DiskManager* disk, size_t pool_pages);
  ~BufferManager();

  BufferManager(const BufferManager&) = delete;
  BufferManager& operator=(const BufferManager&) = delete;

  /// Pins page `page_id`, reading it from disk on a miss.
  Result<Page*> FetchPage(PageId page_id);

  /// Allocates a fresh page on disk and pins a zeroed frame for it.
  Result<Page*> NewPage();

  /// Releases one pin; `dirty` marks the frame modified.
  Status UnpinPage(PageId page_id, bool dirty);

  /// Writes the page back if dirty (it stays cached).
  Status FlushPage(PageId page_id);

  /// Write-behind: hands a dirty, unpinned page to the background
  /// flusher and returns immediately; the frame stays cached and is
  /// fetchable again once the write lands. A no-op (returning OK) when
  /// readahead is off, the page is pinned, clean, absent or already in
  /// transfer — the page is then simply flushed by the usual paths. A
  /// failed background write is latched and surfaced by FlushAll.
  Status FlushPageAsync(PageId page_id);

  /// Flushes every dirty frame, after waiting out all in-flight
  /// asynchronous writes; reports any latched background-write error.
  Status FlushAll();

  /// Begins reading `page_id` into a softly-reserved frame on the
  /// worker pool (see class comment). Every kStarted must be matched by
  /// a FetchPage of the page or a CancelPrefetch (Scanner::Close does
  /// this), or the deferred read count would be lost with the frame.
  PrefetchResult StartPrefetch(PageId page_id);

  /// Drops an unconsumed prefetch: waits out its transfer if still in
  /// flight, evicts the reserved frame (so the eventual ordinary fetch
  /// re-reads and counts the page) and clears any latched error. Safe
  /// to call for pages never prefetched or already consumed.
  void CancelPrefetch(PageId page_id);

  /// Waits until the worker pool is idle. Operations that hand out
  /// raw MetricRegistry pointers to async work (via obs::MetricScope)
  /// must drain before destroying the registry.
  void DrainAsyncIo();

  /// Flushes and then drops every unpinned frame from the pool — a
  /// cold-cache reset. Benchmarks call this before each measured run
  /// so the paper's raw-disk protocol (no cache warm-up between
  /// algorithms) is reproduced. Fails if any frame is pinned.
  Status PurgeAll();

  /// Unpins nothing, but drops the page from the pool and frees it on
  /// disk. The page must not be pinned.
  Status DeletePage(PageId page_id);

  /// Crash simulation (tests only): waits out in-flight async I/O, then
  /// drops every frame — pinned or not, dirty or not — with NO
  /// write-back, exactly as if the process had died with the pool's
  /// state lost. Whatever the backend already holds is what a reopened
  /// store will see. The pool is empty (and all pins void) afterwards;
  /// any Page* previously handed out is invalid. Production code never
  /// calls this.
  void DiscardAll();

  size_t pool_pages() const { return frames_.size(); }
  DiskManager* disk() const { return disk_; }

  /// Readahead window: how many pages ahead a sequential scanner keeps
  /// in flight. 0 disables all async machinery (worker pool, prefetch,
  /// write-behind, async eviction write-back).
  size_t readahead_pages() const { return readahead_pages_; }

  /// Phase operation: resizes the readahead window, creating or
  /// draining-and-destroying the worker pool as needed.
  void set_readahead_pages(size_t n);

  const BufferStats& stats() const { return stats_; }
  void ResetStats() { stats_ = BufferStats(); }

  /// Number of currently pinned frames (for tests / leak detection).
  size_t PinnedFrames() const;

 private:
  /// Finds a victim frame via the clock sweep (latch held). Fails when
  /// every frame is pinned or mid-transfer. The first sweep skips
  /// softly-reserved (prefetched, unconsumed) frames; only when
  /// `allow_reserved` is set does a second sweep reclaim them.
  Result<size_t> FindVictimLocked(bool allow_reserved);

  /// FindVictimLocked for the pin paths (FetchPage/NewPage), with
  /// patience: when the sweep fails but frames are merely mid-transfer
  /// (queued prefetches or background writes far outnumber the I/O
  /// workers under a deep readahead window), waits on the I/O condition
  /// variable and retries — those transfers complete without needing
  /// this latch held, and a finished prefetched frame is reclaimable.
  /// Fails only when every frame is genuinely pinned.
  Result<size_t> AcquireVictimLocked(std::unique_lock<std::mutex>& lk);

  /// Detaches frame `idx` from its current page (latch held): removes
  /// the mapping (and any prefetch reservation) and counts the
  /// eviction. Returns the write-back the caller must perform outside
  /// the latch (old page id, or kInvalidPageId when nothing needs
  /// writing).
  PageId DetachFrameLocked(size_t idx);

  /// Hands a victim write-back to the worker pool when one exists,
  /// copying the frame's bytes so the caller may reuse the frame
  /// immediately. Returns false (caller writes synchronously and erases
  /// the writebacks_ entry itself) when async I/O is off. Called with
  /// the latch released and the frame's io_pending_ set.
  bool MaybeAsyncWriteBack(IoWorkerPool* pool, PageId write_back,
                           const char* bytes);

  DiskManager* disk_;
  std::vector<std::unique_ptr<Page>> frames_;
  std::unordered_map<PageId, size_t> page_table_;
  /// Page ids of evicted dirty victims whose write-back is in flight
  /// (see class comment). A page id appears at most once: the miss path
  /// waits it out before re-caching the page.
  std::unordered_set<PageId> writebacks_;
  /// Unconsumed prefetched pages (soft frame reservations).
  std::unordered_set<PageId> prefetched_;
  /// A failed prefetch latches its Status here; the next FetchPage of
  /// the page consumes it (counting the deferred read — the synchronous
  /// path also counts a read that then fails).
  std::unordered_map<PageId, Status> prefetch_errors_;
  /// A failed background write (write-behind or async eviction
  /// write-back) latches here and is surfaced by FlushAll.
  std::unordered_map<PageId, Status> write_errors_;
  size_t clock_hand_ = 0;
  /// Frames with pin_count_ > 0 — the victim search's headroom signal,
  /// maintained on every 0↔1 pin transition.
  size_t pinned_count_ = 0;
  size_t readahead_pages_ = 0;
  /// Present exactly when readahead_pages_ > 0.
  std::unique_ptr<IoWorkerPool> pool_;
  BufferStats stats_;

  /// The pool latch (see class comment). Mutable so that const
  /// observers (PinnedFrames) can take it.
  mutable std::mutex latch_;
  /// Signalled whenever a frame's io_pending_ transfer completes.
  std::condition_variable io_cv_;
};

/// \brief RAII pin guard: unpins on destruction.
class PinGuard {
 public:
  PinGuard() = default;
  PinGuard(BufferManager* bm, Page* page) : bm_(bm), page_(page) {}
  PinGuard(PinGuard&& o) noexcept { *this = std::move(o); }
  PinGuard& operator=(PinGuard&& o) noexcept {
    Release();
    bm_ = o.bm_;
    page_ = o.page_;
    dirty_ = o.dirty_;
    o.bm_ = nullptr;
    o.page_ = nullptr;
    return *this;
  }
  ~PinGuard() { Release(); }

  PinGuard(const PinGuard&) = delete;
  PinGuard& operator=(const PinGuard&) = delete;

  Page* get() const { return page_; }
  Page* operator->() const { return page_; }
  void MarkDirty() { dirty_ = true; }

  void Release() {
    if (bm_ != nullptr && page_ != nullptr) {
      bm_->UnpinPage(page_->page_id(), dirty_);
    }
    bm_ = nullptr;
    page_ = nullptr;
    dirty_ = false;
  }

 private:
  BufferManager* bm_ = nullptr;
  Page* page_ = nullptr;
  bool dirty_ = false;
};

}  // namespace pbitree

#endif  // PBITREE_STORAGE_BUFFER_MANAGER_H_
