#ifndef PBITREE_STORAGE_BUFFER_MANAGER_H_
#define PBITREE_STORAGE_BUFFER_MANAGER_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace pbitree {

/// \brief Buffer-pool statistics (logical requests vs physical I/O).
struct BufferStats {
  uint64_t fetches = 0;      // FetchPage calls
  uint64_t hits = 0;         // served from the pool
  uint64_t misses = 0;       // required a disk read
  uint64_t evictions = 0;    // victim frames reclaimed
  uint64_t dirty_writes = 0; // evictions/flushes that wrote back

  double HitRate() const {
    return fetches == 0 ? 0.0 : static_cast<double>(hits) / fetches;
  }
};

/// \brief Fixed-size page cache with clock replacement — the Minibase
/// buffer-manager stand-in.
///
/// All page traffic of every algorithm in the repository flows through a
/// BufferManager, so limiting `pool_pages` faithfully reproduces the
/// paper's "b buffer pages" experiments (Figure 6(e)/(f)).
///
/// Usage protocol: FetchPage/NewPage return a pinned frame; callers must
/// UnpinPage(id, dirty) exactly once per pin. Unpinned frames are
/// eligible for eviction.
///
/// Thread safety: FetchPage/NewPage/UnpinPage/DeletePage may be called
/// concurrently. A single pool latch guards the page table, the clock
/// hand and frame metadata; the actual disk transfer of a miss runs
/// *outside* the latch with the frame marked `io_pending_` (a per-frame
/// latch), so misses on different pages overlap their I/O. A fetch that
/// hits a frame mid-transfer waits on the pool's I/O condition
/// variable. Evicting a dirty victim additionally records its page id
/// in a write-back table until the write lands on disk: a miss (or
/// DeletePage) on that id waits on the same condition variable, so no
/// thread can read a stale on-disk copy — or free the page — while its
/// newest bytes are still in flight. Pinned frames are never
/// victimised, so the data bytes of a returned Page* are only touched
/// by its pin holders.
///
/// Maintenance operations (FlushPage/FlushAll/PurgeAll/ResetStats) are
/// phase operations: callers run them while no worker threads are
/// active (between measured runs), which the single-threaded seed
/// behaviour already assumed.
class BufferManager {
 public:
  /// `pool_pages` is the paper's `b` (number of buffer frames).
  BufferManager(DiskManager* disk, size_t pool_pages);
  ~BufferManager();

  BufferManager(const BufferManager&) = delete;
  BufferManager& operator=(const BufferManager&) = delete;

  /// Pins page `page_id`, reading it from disk on a miss.
  Result<Page*> FetchPage(PageId page_id);

  /// Allocates a fresh page on disk and pins a zeroed frame for it.
  Result<Page*> NewPage();

  /// Releases one pin; `dirty` marks the frame modified.
  Status UnpinPage(PageId page_id, bool dirty);

  /// Writes the page back if dirty (it stays cached).
  Status FlushPage(PageId page_id);

  /// Flushes every dirty frame.
  Status FlushAll();

  /// Flushes and then drops every unpinned frame from the pool — a
  /// cold-cache reset. Benchmarks call this before each measured run
  /// so the paper's raw-disk protocol (no cache warm-up between
  /// algorithms) is reproduced. Fails if any frame is pinned.
  Status PurgeAll();

  /// Unpins nothing, but drops the page from the pool and frees it on
  /// disk. The page must not be pinned.
  Status DeletePage(PageId page_id);

  size_t pool_pages() const { return frames_.size(); }
  DiskManager* disk() const { return disk_; }

  const BufferStats& stats() const { return stats_; }
  void ResetStats() { stats_ = BufferStats(); }

  /// Number of currently pinned frames (for tests / leak detection).
  size_t PinnedFrames() const;

 private:
  /// Finds a victim frame via the clock sweep (latch held). Fails when
  /// every frame is pinned or mid-transfer.
  Result<size_t> FindVictimLocked();

  /// Detaches frame `idx` from its current page (latch held): removes
  /// the mapping and counts the eviction. Returns the write-back the
  /// caller must perform outside the latch (old page id, or
  /// kInvalidPageId when nothing needs writing).
  PageId DetachFrameLocked(size_t idx);

  DiskManager* disk_;
  std::vector<std::unique_ptr<Page>> frames_;
  std::unordered_map<PageId, size_t> page_table_;
  /// Page ids of evicted dirty victims whose write-back is in flight
  /// (see class comment). A page id appears at most once: the miss path
  /// waits it out before re-caching the page.
  std::unordered_set<PageId> writebacks_;
  size_t clock_hand_ = 0;
  BufferStats stats_;

  /// The pool latch (see class comment). Mutable so that const
  /// observers (PinnedFrames) can take it.
  mutable std::mutex latch_;
  /// Signalled whenever a frame's io_pending_ transfer completes.
  std::condition_variable io_cv_;
};

/// \brief RAII pin guard: unpins on destruction.
class PinGuard {
 public:
  PinGuard() = default;
  PinGuard(BufferManager* bm, Page* page) : bm_(bm), page_(page) {}
  PinGuard(PinGuard&& o) noexcept { *this = std::move(o); }
  PinGuard& operator=(PinGuard&& o) noexcept {
    Release();
    bm_ = o.bm_;
    page_ = o.page_;
    dirty_ = o.dirty_;
    o.bm_ = nullptr;
    o.page_ = nullptr;
    return *this;
  }
  ~PinGuard() { Release(); }

  PinGuard(const PinGuard&) = delete;
  PinGuard& operator=(const PinGuard&) = delete;

  Page* get() const { return page_; }
  Page* operator->() const { return page_; }
  void MarkDirty() { dirty_ = true; }

  void Release() {
    if (bm_ != nullptr && page_ != nullptr) {
      bm_->UnpinPage(page_->page_id(), dirty_);
    }
    bm_ = nullptr;
    page_ = nullptr;
    dirty_ = false;
  }

 private:
  BufferManager* bm_ = nullptr;
  Page* page_ = nullptr;
  bool dirty_ = false;
};

}  // namespace pbitree

#endif  // PBITREE_STORAGE_BUFFER_MANAGER_H_
