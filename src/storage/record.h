#ifndef PBITREE_STORAGE_RECORD_H_
#define PBITREE_STORAGE_RECORD_H_

#include <cstdint>

namespace pbitree {

/// \brief A PBiTree-coded XML element as stored on disk.
///
/// 16 bytes; 255 records fit in one 4 KiB page under the raw codec.
/// `code` is the PBiTree code (Section 2 of the paper), `tag` identifies
/// the element name and `doc` the owning document.
struct ElementRecord {
  uint64_t code = 0;
  uint32_t tag = 0;
  uint32_t doc = 0;

  friend bool operator==(const ElementRecord&, const ElementRecord&) = default;
};
static_assert(sizeof(ElementRecord) == 16);

/// \brief One (ancestor, descendant) output tuple of a containment join.
struct ResultPair {
  uint64_t ancestor_code = 0;
  uint64_t descendant_code = 0;

  friend bool operator==(const ResultPair&, const ResultPair&) = default;
  friend auto operator<=>(const ResultPair&, const ResultPair&) = default;
};
static_assert(sizeof(ResultPair) == 16);

}  // namespace pbitree

#endif  // PBITREE_STORAGE_RECORD_H_
