#ifndef PBITREE_STORAGE_ASYNC_IO_H_
#define PBITREE_STORAGE_ASYNC_IO_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "storage/io_backend.h"
#include "storage/page.h"

namespace pbitree {

/// \brief A ticket for one submitted I/O job: shared completion state
/// the submitter waits on (or cancels) and the worker publishes to.
///
/// Tickets are cheap shared_ptr handles; dropping one does not cancel
/// the job (fire-and-forget submission is legal — the pool keeps its
/// own reference until completion).
class IoTicket {
 public:
  IoTicket() = default;
  bool valid() const { return state_ != nullptr; }

 private:
  friend class IoWorkerPool;

  struct State {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    bool cancelled = false;
    bool started = false;
    Status status;
    std::function<Status()> fn;
    /// The operation's metric registry, captured at submission so the
    /// worker bills the job's counters and timers to the operation that
    /// caused the I/O, not to the pool (see obs::MetricScope).
    obs::MetricRegistry* registry = nullptr;
  };

  explicit IoTicket(std::shared_ptr<State> s) : state_(std::move(s)) {}
  std::shared_ptr<State> state_;
};

/// \brief Fixed-width worker pool executing submitted I/O jobs from a
/// FIFO queue — the submission/completion split every async path in the
/// storage layer (AsyncIoBackend, buffer-pool prefetch, write-behind)
/// is built on.
///
/// Jobs are arbitrary Status() closures, so layered I/O (checksum
/// verification, bounded retry, fault injection) composes unchanged:
/// a prefetch job simply calls the full DiskManager read path from a
/// worker thread. The submitter's obs::MetricRegistry is captured at
/// Submit and installed around the job, keeping per-operation
/// attribution exact across the thread hop.
///
/// Thread safety: all methods may be called concurrently. Destruction
/// and Drain wait for every accepted job to finish.
class IoWorkerPool {
 public:
  explicit IoWorkerPool(size_t workers);
  ~IoWorkerPool();

  IoWorkerPool(const IoWorkerPool&) = delete;
  IoWorkerPool& operator=(const IoWorkerPool&) = delete;

  /// Enqueues `fn` for execution on a worker thread.
  IoTicket Submit(std::function<Status()> fn);

  /// Blocks until the job completes (or was cancelled, reported as
  /// kCancelled). The wait — not the job — is recorded as io-wait
  /// latency against the caller's registry.
  Status Wait(const IoTicket& ticket);

  /// Attempts to cancel a job that has not started. Returns true when
  /// the job was dequeued before running — its closure will never
  /// execute, and Wait returns kCancelled. A job already running (or
  /// finished) returns false and is unaffected.
  bool TryCancel(const IoTicket& ticket);

  /// Waits until the queue is empty and no job is executing. New
  /// submissions during a drain are drained too.
  void Drain();

  size_t workers() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for jobs
  std::condition_variable drain_cv_;  // Drain waits for quiescence
  std::deque<std::shared_ptr<IoTicket::State>> queue_;
  size_t running_ = 0;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

/// \brief Decorator running every page transfer of an inner backend
/// through an IoWorkerPool submission queue — the async counterpart of
/// the PR 4 stack, behind the same IoBackend interface.
///
/// The synchronous IoBackend methods enqueue and wait, so existing
/// callers (DiskManager retry/CRC, fault schedules wrapped inside) work
/// unchanged while transfers execute off-thread; SubmitRead/SubmitWrite
/// expose the split directly for callers that overlap submission with
/// compute and collect completions later via Wait. With `workers` > 1,
/// independent transfers proceed in parallel even for purely
/// synchronous callers on different threads.
class AsyncIoBackend : public IoBackend {
 public:
  /// Wraps `inner`; `workers` threads drain the submission queue.
  AsyncIoBackend(std::unique_ptr<IoBackend> inner, size_t workers = 2);
  ~AsyncIoBackend() override;

  const char* name() const override { return "async"; }
  Status ReadPage(PageId id, char* out) override;
  Status WritePage(PageId id, const char* in) override;
  Status Allocate(PageId id) override { return inner_->Allocate(id); }
  Status Free(PageId id) override { return inner_->Free(id); }
  Status Sync() override;
  StatusOr<PageId> SizeInPages() override { return inner_->SizeInPages(); }

  /// Asynchronous submission: `out`/`in` must stay valid (and, for
  /// writes, unmodified) until Wait returns for the ticket.
  IoTicket SubmitRead(PageId id, char* out);
  IoTicket SubmitWrite(PageId id, const char* in);
  Status Wait(const IoTicket& ticket) { return pool_.Wait(ticket); }

  IoBackend* inner() { return inner_.get(); }

 private:
  std::unique_ptr<IoBackend> inner_;
  IoWorkerPool pool_;
};

/// \brief Decorator adding a fixed per-transfer sleep to an inner
/// backend — deterministic "slow disk" for benches and tests. Unlike
/// the post-hoc `simulated_io_ms` arithmetic of RunOptions (which only
/// rescales counted I/O), this injects *real* latency, so overlap
/// machinery (readahead, async write-back) shows up as genuinely
/// reduced io-wait instead of identical simulated seconds.
class LatencyInjectingBackend : public IoBackend {
 public:
  LatencyInjectingBackend(std::unique_ptr<IoBackend> inner, uint32_t read_us,
                          uint32_t write_us)
      : inner_(std::move(inner)), read_us_(read_us), write_us_(write_us) {}

  const char* name() const override { return "latency"; }
  Status ReadPage(PageId id, char* out) override;
  Status WritePage(PageId id, const char* in) override;
  Status Allocate(PageId id) override { return inner_->Allocate(id); }
  Status Free(PageId id) override { return inner_->Free(id); }
  Status Sync() override { return inner_->Sync(); }
  StatusOr<PageId> SizeInPages() override { return inner_->SizeInPages(); }

 private:
  std::unique_ptr<IoBackend> inner_;
  uint32_t read_us_;
  uint32_t write_us_;
};

}  // namespace pbitree

#endif  // PBITREE_STORAGE_ASYNC_IO_H_
