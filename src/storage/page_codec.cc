#include "storage/page_codec.h"

#include <cstring>

namespace pbitree {

namespace {

/// Cap of the raw record layouts: the seed layout (payload offset 0)
/// and the kFoRDelta raw16 fallback (payload offset 1) both hold 255.
constexpr size_t kRawMaxRecords = kCodecPayloadSize / 16;
constexpr size_t kRaw16MaxRecords = (kCodecPayloadSize - 1) / 16;
static_assert(kRawMaxRecords == 255 && kRaw16MaxRecords == 255);

size_t VarintLen(uint64_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

void PutVarint(uint64_t v, char** p) {
  auto* out = reinterpret_cast<uint8_t*>(*p);
  while (v >= 0x80) {
    *out++ = static_cast<uint8_t>(v) | 0x80;
    v >>= 7;
  }
  *out++ = static_cast<uint8_t>(v);
  *p = reinterpret_cast<char*>(out);
}

/// False on a truncated or over-long (> 10 byte) varint.
bool GetVarint(const char** p, const char* limit, uint64_t* v) {
  const auto* in = reinterpret_cast<const uint8_t*>(*p);
  const auto* end = reinterpret_cast<const uint8_t*>(limit);
  uint64_t out = 0;
  for (int shift = 0; shift < 70 && in < end; shift += 7) {
    uint8_t byte = *in++;
    out |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *p = reinterpret_cast<const char*>(in);
      *v = out;
      return true;
    }
  }
  return false;
}

/// Zigzag of the (possibly negative) code delta. Codes are < 2^63, so
/// the unsigned subtraction wraps to a representable signed delta.
uint64_t ZigZag(uint64_t cur, uint64_t prev) {
  auto d = static_cast<int64_t>(cur - prev);
  return (static_cast<uint64_t>(d) << 1) ^ static_cast<uint64_t>(d >> 63);
}

uint64_t UnZigZag(uint64_t z) {
  return (z >> 1) ^ (~(z & 1) + 1);
}

class RawPageCodec final : public PageCodec {
 public:
  PageCodecKind kind() const override { return PageCodecKind::kRaw; }
  size_t max_records() const override { return kRawMaxRecords; }

  Status Encode(std::span<const ElementRecord> recs,
                char* payload) const override {
    if (recs.size() > kRawMaxRecords) {
      return Status::InvalidArgument("raw codec: too many records for page");
    }
    std::memset(payload, 0, kCodecPayloadSize);
    std::memcpy(payload, recs.data(), recs.size() * sizeof(ElementRecord));
    return Status::OK();
  }

  Status Decode(const char* payload, size_t count,
                ElementRecord* out) const override {
    if (count > kRawMaxRecords) {
      return Status::Corruption("raw codec: page count out of range");
    }
    std::memcpy(out, payload, count * sizeof(ElementRecord));
    return Status::OK();
  }
};

class FoRDeltaPageCodec final : public PageCodec {
 public:
  PageCodecKind kind() const override { return PageCodecKind::kFoRDelta; }
  size_t max_records() const override { return kMaxCodecRecordsPerPage; }

  Status Encode(std::span<const ElementRecord> recs,
                char* payload) const override {
    FoRDeltaSizer sizer;
    for (const ElementRecord& rec : recs) sizer.Add(rec);
    const size_t delta_bytes = sizer.bytes();
    const size_t raw_bytes = 1 + recs.size() * sizeof(ElementRecord);
    std::memset(payload, 0, kCodecPayloadSize);
    if (delta_bytes <= kCodecPayloadSize && delta_bytes < raw_bytes) {
      char* p = payload;
      *p++ = 1;  // mode: delta
      uint64_t prev = 0;
      for (size_t i = 0; i < recs.size(); ++i) {
        if (i == 0) {
          std::memcpy(p, &recs[i].code, sizeof(uint64_t));
          p += sizeof(uint64_t);
        } else {
          PutVarint(ZigZag(recs[i].code, prev), &p);
        }
        prev = recs[i].code;
        PutVarint(recs[i].tag, &p);
        PutVarint(recs[i].doc, &p);
      }
      return Status::OK();
    }
    if (recs.size() <= kRaw16MaxRecords) {
      payload[0] = 0;  // mode: raw16 fallback
      std::memcpy(payload + 1, recs.data(),
                  recs.size() * sizeof(ElementRecord));
      return Status::OK();
    }
    return Status::InvalidArgument(
        "for-delta codec: records do not fit one page");
  }

  Status Decode(const char* payload, size_t count,
                ElementRecord* out) const override {
    if (count == 0) return Status::OK();
    if (count > kMaxCodecRecordsPerPage) {
      return Status::Corruption("for-delta codec: page count out of range");
    }
    const char* p = payload;
    const char* limit = payload + kCodecPayloadSize;
    const uint8_t mode = static_cast<uint8_t>(*p++);
    if (mode == 0) {
      if (count > kRaw16MaxRecords) {
        return Status::Corruption("for-delta codec: raw16 count too large");
      }
      std::memcpy(out, p, count * sizeof(ElementRecord));
      return Status::OK();
    }
    if (mode != 1) {
      return Status::Corruption("for-delta codec: unknown page mode");
    }
    uint64_t prev = 0;
    for (size_t i = 0; i < count; ++i) {
      uint64_t code;
      if (i == 0) {
        if (p + sizeof(uint64_t) > limit) {
          return Status::Corruption("for-delta codec: truncated page");
        }
        std::memcpy(&code, p, sizeof(uint64_t));
        p += sizeof(uint64_t);
      } else {
        uint64_t z;
        if (!GetVarint(&p, limit, &z)) {
          return Status::Corruption("for-delta codec: truncated page");
        }
        code = prev + UnZigZag(z);
      }
      uint64_t tag, doc;
      if (!GetVarint(&p, limit, &tag) || !GetVarint(&p, limit, &doc) ||
          tag > UINT32_MAX || doc > UINT32_MAX) {
        return Status::Corruption("for-delta codec: truncated page");
      }
      out[i].code = code;
      out[i].tag = static_cast<uint32_t>(tag);
      out[i].doc = static_cast<uint32_t>(doc);
      prev = code;
    }
    return Status::OK();
  }
};

}  // namespace

const char* PageCodecName(PageCodecKind kind) {
  switch (kind) {
    case PageCodecKind::kRaw:
      return "raw";
    case PageCodecKind::kFoRDelta:
      return "for-delta";
  }
  return "unknown";
}

const PageCodec* GetPageCodec(PageCodecKind kind) {
  static const RawPageCodec raw;
  static const FoRDeltaPageCodec for_delta;
  return kind == PageCodecKind::kFoRDelta
             ? static_cast<const PageCodec*>(&for_delta)
             : static_cast<const PageCodec*>(&raw);
}

size_t FoRDeltaSizer::BytesWith(const ElementRecord& rec) const {
  size_t add = VarintLen(rec.tag) + VarintLen(rec.doc);
  add += count_ == 0 ? sizeof(uint64_t) : VarintLen(ZigZag(rec.code, prev_code_));
  return bytes_ + add;
}

void FoRDeltaSizer::Add(const ElementRecord& rec) {
  bytes_ = BytesWith(rec);
  prev_code_ = rec.code;
  ++count_;
}

bool FoRDeltaSizer::CanHold(const ElementRecord& rec) const {
  return BytesWith(rec) <= kCodecPayloadSize || count_ + 1 <= kRaw16MaxRecords;
}

}  // namespace pbitree
