#ifndef PBITREE_STORAGE_IO_BACKEND_H_
#define PBITREE_STORAGE_IO_BACKEND_H_

#include <sys/types.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "storage/page.h"

namespace pbitree {

/// \brief The narrow, exchangeable storage contract the rest of the
/// system builds on: whole-page transfer plus capacity hooks, every
/// operation returning Status.
///
/// The DiskManager owns exactly one IoBackend and layers allocation
/// (free list, frontier), per-page CRC32C checksum verification and a
/// bounded-retry policy on top; nothing above the DiskManager ever
/// talks to a backend directly. Backends are failure-prone by design —
/// a production deployment assumes I/O fails and writes tear — and the
/// FaultInjectingBackend decorator turns that assumption into a
/// deterministic, testable schedule.
///
/// Thread safety: ReadPage/WritePage may be called concurrently (the
/// buffer manager performs page transfers outside its pool latch);
/// Allocate/Free arrive under the DiskManager's allocation lock.
class IoBackend {
 public:
  virtual ~IoBackend() = default;

  /// Human-readable backend kind ("file", "mem", "fault(...)").
  virtual const char* name() const = 0;

  /// Reads exactly kPageSize bytes of page `id` into `out`. A page that
  /// was allocated but never written reads as zeroes.
  virtual Status ReadPage(PageId id, char* out) = 0;

  /// Writes exactly kPageSize bytes from `in` to page `id`.
  virtual Status WritePage(PageId id, const char* in) = 0;

  /// Capacity hook: `id` was handed out by the allocator. Backends may
  /// use it to grow their store eagerly; the default lazily grows on
  /// first write instead.
  virtual Status Allocate(PageId id) = 0;

  /// Capacity hook: `id` was returned to the allocator's free pool.
  virtual Status Free(PageId id) = 0;

  /// Durability barrier: pages written before Sync survive a crash
  /// after it (fsync for the file backend, no-op for memory).
  virtual Status Sync() = 0;

  /// Number of pages the persistent store currently holds — what
  /// OpenExisting uses to restore the allocation frontier. Zero for
  /// non-persistent backends.
  virtual StatusOr<PageId> SizeInPages() { return PageId{0}; }
};

namespace io_internal {

/// Signatures of the positional transfer primitives (`::pread`-shaped
/// minus the fd), injectable so the resumption loops below are testable
/// against scripted short transfers and EINTR without a real device.
using PReadFn = std::function<ssize_t(char* buf, size_t n, off_t off)>;
using PWriteFn = std::function<ssize_t(const char* buf, size_t n, off_t off)>;

/// Reads exactly `n` bytes at `off`, resuming after short reads and
/// retrying EINTR. A true end of file (the primitive returns 0) is not
/// an error: the unread tail is zero-filled — the "allocated but never
/// written" page contract. Any other failure is an IOError carrying the
/// primitive's errno.
Status ReadFullAt(const PReadFn& pread_fn, const char* what, char* buf,
                  size_t n, off_t off);

/// Writes exactly `n` bytes at `off`, resuming after short writes and
/// retrying EINTR. A primitive that reports zero progress on a nonzero
/// request is an error (looping on it would spin forever).
Status WriteFullAt(const PWriteFn& pwrite_fn, const char* what,
                   const char* buf, size_t n, off_t off);

}  // namespace io_internal

/// \brief Durable file-backed backend (pread/pwrite on one fd).
class FileIoBackend : public IoBackend {
 public:
  /// Opens `path`, truncating when `truncate` is set (scratch database)
  /// and keeping existing bytes otherwise (persistent database). With
  /// `unlink_on_close` the file is removed on destruction.
  static StatusOr<std::unique_ptr<IoBackend>> Open(const std::string& path,
                                                   bool truncate,
                                                   bool unlink_on_close);

  ~FileIoBackend() override;

  const char* name() const override { return "file"; }
  Status ReadPage(PageId id, char* out) override;
  Status WritePage(PageId id, const char* in) override;
  Status Allocate(PageId) override { return Status::OK(); }
  Status Free(PageId) override { return Status::OK(); }
  Status Sync() override;
  StatusOr<PageId> SizeInPages() override;

 private:
  FileIoBackend(std::string path, int fd, bool unlink_on_close)
      : path_(std::move(path)), fd_(fd), unlink_on_close_(unlink_on_close) {}

  std::string path_;
  int fd_;
  bool unlink_on_close_;
};

/// \brief Volatile in-memory backend — the default substrate for tests
/// and benchmarks (every transfer still counts as physical I/O upstream,
/// emulating the paper's raw-disk Minibase setup without OS cache
/// interference).
class MemIoBackend : public IoBackend {
 public:
  const char* name() const override { return "mem"; }
  Status ReadPage(PageId id, char* out) override;
  Status WritePage(PageId id, const char* in) override;
  Status Allocate(PageId) override { return Status::OK(); }
  Status Free(PageId) override { return Status::OK(); }
  Status Sync() override { return Status::OK(); }

 private:
  /// Page transfers take the lock shared; capacity growth exclusive.
  std::shared_mutex mu_;
  std::vector<char> mem_;
};

/// \brief Deterministic, seedable fault schedule for the
/// FaultInjectingBackend decorator.
///
/// Triggers are counter-based ("every Nth read/write") and/or
/// probability-based (seeded xoshiro — identical seed, identical fault
/// sequence). A triggered fault manifests as:
///  - `transient > 0`: the faulted attempt and the next `transient - 1`
///    attempts of the same kind fail with kIOError, then operations
///    succeed again — a fault the retry layer absorbs.
///  - `transient == 0` (sticky): once triggered, every later operation
///    of that kind fails — a permanent device failure.
///  - `torn_writes`: a triggered *write* does not fail; it silently
///    writes a torn page (first half lands, second half corrupted) and
///    reports success. Detected later by the checksum on read.
///  - `short_reads`: a triggered *read* does not fail; it delivers a
///    short read (tail zeroed) and reports success. Detected by the
///    checksum.
///
/// Parseable from a spec string (the PBITREE_FAULT_SCHEDULE env var):
///   "seed=42,write_every=13,read_every=0,transient=2,
///    write_p=0.0,read_p=0.0,torn_writes=0,short_reads=0"
/// Unknown keys are an error; omitted keys keep their defaults. A
/// schedule with no trigger (all *_every == 0 and *_p == 0) injects
/// nothing.
struct FaultSchedule {
  uint64_t seed = 1;
  uint64_t read_every = 0;   // fault every Nth read attempt (0 = off)
  uint64_t write_every = 0;  // fault every Nth write attempt (0 = off)
  double read_p = 0.0;       // per-read fault probability
  double write_p = 0.0;      // per-write fault probability
  uint32_t transient = 0;    // consecutive failures per trigger; 0 = sticky
  bool torn_writes = false;
  bool short_reads = false;

  bool Enabled() const {
    return read_every != 0 || write_every != 0 || read_p > 0.0 || write_p > 0.0;
  }

  static StatusOr<FaultSchedule> Parse(const std::string& spec);

  /// Parses PBITREE_FAULT_SCHEDULE; nullopt when unset. A set-but-
  /// invalid spec aborts with a message naming the variable — a knob
  /// the user bothered to set must never be silently ignored.
  static std::optional<FaultSchedule> FromEnv();

  std::string ToString() const;
};

/// \brief Decorator injecting scheduled faults into another backend.
///
/// Deterministic: the fault sequence is a pure function of the schedule
/// and the order of operations (single-threaded runs reproduce
/// bit-for-bit; the per-kind op counters and RNG sit under a mutex so
/// concurrent use stays well-defined). The schedule can be re-armed at
/// runtime, letting tests build clean data first and inject faults only
/// during the measured run.
class FaultInjectingBackend : public IoBackend {
 public:
  FaultInjectingBackend(std::unique_ptr<IoBackend> inner,
                        FaultSchedule schedule);

  const char* name() const override { return "fault"; }
  Status ReadPage(PageId id, char* out) override;
  Status WritePage(PageId id, const char* in) override;
  Status Allocate(PageId id) override { return inner_->Allocate(id); }
  Status Free(PageId id) override { return inner_->Free(id); }
  Status Sync() override { return inner_->Sync(); }
  StatusOr<PageId> SizeInPages() override { return inner_->SizeInPages(); }

  /// Replaces the schedule and resets all fault state (op counters,
  /// pending failures, RNG reseeded from the new schedule).
  void Arm(const FaultSchedule& schedule);

  /// Stops injecting (equivalent to arming an empty schedule).
  void Disarm() { Arm(FaultSchedule{}); }

  /// Total faults injected since construction (survives re-arming).
  uint64_t faults_injected() const;

 private:
  /// Per-operation-kind trigger state.
  struct KindState {
    uint64_t ops = 0;                // attempts seen
    uint32_t pending_failures = 0;   // transient failures still owed
    bool sticky_failed = false;      // permanent fault latched
  };

  /// Returns true when this attempt must be faulted (mutex held).
  bool TriggerLocked(KindState* ks, uint64_t every, double p);

  std::unique_ptr<IoBackend> inner_;
  mutable std::mutex mu_;
  FaultSchedule schedule_;
  Random rng_;
  KindState reads_, writes_;
  uint64_t faults_injected_ = 0;
};

/// Factory keyed by backend kind, the `--backend=file|mem` surface of
/// pbitree_cli: "file" opens (or creates) a persistent database at
/// `path`; "mem" ignores `path` and builds a fresh volatile store.
StatusOr<std::unique_ptr<IoBackend>> MakeIoBackend(const std::string& kind,
                                                   const std::string& path);

}  // namespace pbitree

#endif  // PBITREE_STORAGE_IO_BACKEND_H_
