#include "storage/async_io.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace pbitree {

// ---------------------------------------------------------------------------
// IoWorkerPool

IoWorkerPool::IoWorkerPool(size_t workers) {
  if (workers == 0) workers = 1;
  threads_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

IoWorkerPool::~IoWorkerPool() {
  Drain();
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

IoTicket IoWorkerPool::Submit(std::function<Status()> fn) {
  auto state = std::make_shared<IoTicket::State>();
  state->fn = std::move(fn);
  state->registry = obs::CurrentRegistry();
  {
    std::lock_guard<std::mutex> lk(mu_);
    queue_.push_back(state);
  }
  work_cv_.notify_one();
  return IoTicket(std::move(state));
}

Status IoWorkerPool::Wait(const IoTicket& ticket) {
  if (!ticket.valid()) return Status::InvalidArgument("wait on empty ticket");
  IoTicket::State* s = ticket.state_.get();
  obs::LatencyTimer io_wait(obs::Latency::kIoWait);
  std::unique_lock<std::mutex> lk(s->mu);
  s->cv.wait(lk, [s] { return s->done; });
  io_wait.Finish();
  return s->status;
}

bool IoWorkerPool::TryCancel(const IoTicket& ticket) {
  if (!ticket.valid()) return false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = std::find(queue_.begin(), queue_.end(), ticket.state_);
    if (it == queue_.end()) return false;
    queue_.erase(it);
  }
  IoTicket::State* s = ticket.state_.get();
  {
    std::lock_guard<std::mutex> lk(s->mu);
    s->cancelled = true;
    s->done = true;
    s->status = Status::Cancelled("io job cancelled before it started");
    s->fn = nullptr;
  }
  s->cv.notify_all();
  drain_cv_.notify_all();
  return true;
}

void IoWorkerPool::Drain() {
  std::unique_lock<std::mutex> lk(mu_);
  drain_cv_.wait(lk, [this] { return queue_.empty() && running_ == 0; });
}

void IoWorkerPool::WorkerLoop() {
  for (;;) {
    std::shared_ptr<IoTicket::State> job;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left
      job = std::move(queue_.front());
      queue_.pop_front();
      ++running_;
    }
    {
      std::lock_guard<std::mutex> lk(job->mu);
      job->started = true;
    }
    Status st;
    {
      // Bill the job's page I/O, retries and checksum events to the
      // operation that submitted it — not to whichever operation last
      // ran on this worker thread.
      obs::MetricScope scope(job->registry);
      st = job->fn();
    }
    job->fn = nullptr;
    {
      std::lock_guard<std::mutex> lk(job->mu);
      job->status = std::move(st);
      job->done = true;
    }
    job->cv.notify_all();
    {
      std::lock_guard<std::mutex> lk(mu_);
      --running_;
    }
    drain_cv_.notify_all();
  }
}

// ---------------------------------------------------------------------------
// AsyncIoBackend

AsyncIoBackend::AsyncIoBackend(std::unique_ptr<IoBackend> inner,
                               size_t workers)
    : inner_(std::move(inner)), pool_(workers) {}

AsyncIoBackend::~AsyncIoBackend() = default;

Status AsyncIoBackend::ReadPage(PageId id, char* out) {
  return pool_.Wait(SubmitRead(id, out));
}

Status AsyncIoBackend::WritePage(PageId id, const char* in) {
  return pool_.Wait(SubmitWrite(id, in));
}

Status AsyncIoBackend::Sync() {
  // Sync is a barrier: it must order after every queued write, so it
  // goes through the same queue (FIFO) rather than bypassing it.
  return pool_.Wait(pool_.Submit([this] { return inner_->Sync(); }));
}

IoTicket AsyncIoBackend::SubmitRead(PageId id, char* out) {
  return pool_.Submit([this, id, out] { return inner_->ReadPage(id, out); });
}

IoTicket AsyncIoBackend::SubmitWrite(PageId id, const char* in) {
  return pool_.Submit([this, id, in] { return inner_->WritePage(id, in); });
}

// ---------------------------------------------------------------------------
// LatencyInjectingBackend

Status LatencyInjectingBackend::ReadPage(PageId id, char* out) {
  if (read_us_ > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(read_us_));
  }
  return inner_->ReadPage(id, out);
}

Status LatencyInjectingBackend::WritePage(PageId id, const char* in) {
  if (write_us_ > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(write_us_));
  }
  return inner_->WritePage(id, in);
}

}  // namespace pbitree
