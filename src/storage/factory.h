#ifndef PBITREE_STORAGE_FACTORY_H_
#define PBITREE_STORAGE_FACTORY_H_

#include <string>

#include "common/status.h"
#include "storage/page_codec.h"

namespace pbitree {

/// \brief One parse/validate path for the storage knobs every tool
/// exposes (--backend, --page-codec), so the CLI, the serve daemon,
/// benches and MakeIoBackend itself agree on the accepted vocabulary
/// and produce one error text.

/// Validates an IoBackend kind string: "file", "mem", or either wrapped
/// in any depth of "async-" (the submission-queue wrapper). The error
/// is the single user-facing "unknown backend" message.
Status ValidateIoBackendKind(const std::string& kind);

/// The --help vocabulary for --backend flags.
const char* IoBackendHelp();

/// Parses a page-codec name ("raw", "for-delta" — the PageCodecName
/// vocabulary, case-sensitive).
Result<PageCodecKind> ParsePageCodecKind(const std::string& name);

/// The --help vocabulary for --page-codec flags.
const char* PageCodecHelp();

/// Codec used for newly created element-set files when the caller does
/// not pass one explicitly: the PBITREE_PAGE_CODEC environment variable
/// (default "raw"). Like the other checked env knobs, a set-but-invalid
/// value aborts with a message instead of being silently ignored.
PageCodecKind AmbientPageCodec();

}  // namespace pbitree

#endif  // PBITREE_STORAGE_FACTORY_H_
