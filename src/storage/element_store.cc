#include "storage/element_store.h"

#include <algorithm>
#include <cstring>
#include <functional>
#include <utility>

#include "common/crc32c.h"
#include "pbitree/update.h"

namespace pbitree {

namespace {

// Commit-log stream layout (chunked over a chain of log pages, each
// page: u32 next, u32 chunk_len, payload):
//   0  u64 magic "PBITRLOG"     8  u64 epoch of the commit
//   16 u32 image count          20 u32 CRC32C (field zeroed to compute)
//   24 images: (u32 page id + kPageSize after-image) each.
// The first image is always the new catalog header (page 0).
constexpr uint64_t kLogMagic = 0x474F4C5254494250ULL;  // "PBITRLOG"
constexpr size_t kLogHeaderBytes = 24;
constexpr size_t kLogImageBytes = 4 + kPageSize;
constexpr size_t kLogPagePayload = kPageSize - 8;

template <typename T>
void AppendPod(std::vector<char>* v, T x) {
  const char* p = reinterpret_cast<const char*>(&x);
  v->insert(v->end(), p, p + sizeof(T));
}

template <typename T>
T ReadPod(const char* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}

/// Document order of two codes: (Start ascending, height descending),
/// i.e. an ancestor sorts before its descendants. This is the pre-order
/// of the forest re-binarization rebuilds.
bool DocBefore(Code a, Code b) {
  uint64_t sa = StartOf(a), sb = StartOf(b);
  if (sa != sb) return sa < sb;
  return HeightOf(a) > HeightOf(b);
}

/// True when appending `next` after `prev` keeps document order.
bool DocOrdered(Code prev, Code next) {
  uint64_t sp = StartOf(prev), sn = StartOf(next);
  if (sp != sn) return sp < sn;
  return HeightOf(prev) >= HeightOf(next);
}

}  // namespace

Status ElementSetStore::Recover(DiskManager* disk) {
  PBITREE_ASSIGN_OR_RETURN(PageId size, disk->backend()->SizeInPages());
  if (size == 0) return Status::OK();  // brand-new database
  // ReadPage range-checks against the frontier; the backend's size is a
  // safe (only-grows) bound until Catalog::Load restores the real one.
  disk->SetFrontier(size);
  std::vector<char> header(kPageSize);
  PBITREE_RETURN_IF_ERROR(disk->ReadPage(0, header.data()));
  if (ReadPod<uint64_t>(header.data()) != Catalog::kMagic) return Status::OK();
  if (ReadPod<uint32_t>(header.data() + Catalog::kVersionOffset) < 2) {
    return Status::OK();  // build-once v1 database: nothing to repair
  }
  const bool header_ok = Catalog::HeaderCrcValid(header.data());
  // The recovery-critical scalars live in the first half of the page,
  // which even a torn header write leaves intact; bogus values in a
  // fully garbled header just make the log parse below fail closed.
  const uint64_t header_epoch =
      ReadPod<uint64_t>(header.data() + Catalog::kEpochOffset);
  const PageId log_first =
      ReadPod<PageId>(header.data() + Catalog::kLogFirstOffset);
  const uint32_t log_count =
      ReadPod<uint32_t>(header.data() + Catalog::kLogCountOffset);

  // Reassemble and validate the commit-log stream. Any defect — bad
  // chain, short stream, wrong magic or checksum — means the last
  // commit never became durable; the log is then simply ignored.
  bool log_ok = false;
  uint64_t log_epoch = 0;
  uint32_t n_images = 0;
  std::vector<char> stream;
  do {
    if (log_first == kInvalidPageId || log_count == 0 || log_count > size) {
      break;
    }
    PageId pid = log_first;
    bool bad = false;
    for (uint32_t i = 0; i < log_count; ++i) {
      if (pid == 0 || pid == kInvalidPageId || pid >= size) {
        bad = true;
        break;
      }
      char page[kPageSize];
      if (!disk->ReadPage(pid, page).ok()) {
        bad = true;
        break;
      }
      uint32_t chunk = ReadPod<uint32_t>(page + 4);
      if (chunk > kLogPagePayload) {
        bad = true;
        break;
      }
      stream.insert(stream.end(), page + 8, page + 8 + chunk);
      pid = ReadPod<PageId>(page);
    }
    if (bad || stream.size() < kLogHeaderBytes) break;
    if (ReadPod<uint64_t>(stream.data()) != kLogMagic) break;
    log_epoch = ReadPod<uint64_t>(stream.data() + 8);
    n_images = ReadPod<uint32_t>(stream.data() + 16);
    const uint32_t crc = ReadPod<uint32_t>(stream.data() + 20);
    if (stream.size() != kLogHeaderBytes + size_t{n_images} * kLogImageBytes) {
      break;
    }
    std::vector<char> copy = stream;
    std::memset(copy.data() + 20, 0, 4);
    if (Crc32c(copy.data(), copy.size()) != crc) break;
    log_ok = true;
  } while (false);

  if (!log_ok) {
    if (header_ok) return Status::OK();
    return Status::Corruption(
        "catalog header is torn and no valid commit log exists to repair it");
  }
  if (header_ok && log_epoch < header_epoch) {
    return Status::OK();  // stale log from before the header's commit
  }
  // Replay. This also runs when the header already carries the log's
  // epoch: physical redo is idempotent, and an in-place data-page write
  // torn *after* the header landed is only repaired by re-applying the
  // images unconditionally.
  PageId max_pid = 0;
  for (uint32_t i = 0; i < n_images; ++i) {
    const char* at = stream.data() + kLogHeaderBytes + i * kLogImageBytes;
    max_pid = std::max(max_pid, ReadPod<PageId>(at));
  }
  disk->SetFrontier(max_pid + 1);
  for (uint32_t i = 0; i < n_images; ++i) {
    const char* at = stream.data() + kLogHeaderBytes + i * kLogImageBytes;
    PBITREE_RETURN_IF_ERROR(disk->WritePage(ReadPod<PageId>(at), at + 4));
  }
  return disk->Sync();
}

StatusOr<std::unique_ptr<ElementSetStore>> ElementSetStore::Open(
    BufferManager* bm) {
  std::unique_ptr<ElementSetStore> store(new ElementSetStore(bm));
  PBITREE_ASSIGN_OR_RETURN(store->catalog_, Catalog::Load(bm));
  store->epoch_.store(store->catalog_.epoch(), std::memory_order_release);
  for (const std::string& name : store->catalog_.Names()) {
    if (store->catalog_.IsSegmented(name)) continue;
    PBITREE_ASSIGN_OR_RETURN(ElementSet set, store->catalog_.Get(bm, name));
    SetState st;
    st.name = name;
    st.set = std::move(set);
    store->sets_.emplace(name, std::move(st));
  }
  // Rediscover the committed log chain so the next commit can retire
  // its pages. Defensive bounds: a dangling chain (possible only after
  // an ignored torn log) just stops early and leaks those pages.
  PageId pid = store->catalog_.log_first_page();
  const uint32_t count = store->catalog_.log_page_count();
  DiskManager* disk = bm->disk();
  for (uint32_t i = 0; i < count; ++i) {
    if (pid == 0 || pid == kInvalidPageId || pid >= disk->frontier()) break;
    char page[kPageSize];
    if (!disk->ReadPage(pid, page).ok()) break;
    store->live_log_pages_.push_back(pid);
    pid = ReadPod<PageId>(page);
  }
  return store;
}

ElementSetStore::~ElementSetStore() {
  if (OwnsBatch()) {
    // Abandoned batch: free the pins so the pool stays usable; the
    // uncommitted bytes die with the pool (never flushed over old
    // state — tracked pages were pinned the whole time).
    ReleaseTrackedPins();
    batch_open_.store(false, std::memory_order_release);
    mu_.unlock();
  }
  for (auto& [name, st] : sets_) {
    if (st.code_index) (void)st.code_index->Drop(bm_);
    if (st.interval_index) (void)st.interval_index->Drop(bm_);
  }
}

StatusOr<const ElementSet*> ElementSetStore::GetSet(
    const std::string& name) const {
  auto it = sets_.find(name);
  if (it == sets_.end()) {
    if (catalog_.IsSegmented(name)) {
      return Status::InvalidArgument("element set '" + name +
                                     "' is segmented; open it through a "
                                     "SegmentStore");
    }
    return Status::NotFound("no element set named '" + name + "'");
  }
  return &it->second.set;
}

std::vector<std::string> ElementSetStore::SetNames() const {
  std::vector<std::string> out;
  out.reserve(sets_.size());
  for (const auto& [name, st] : sets_) out.push_back(name);
  return out;
}

void ElementSetStore::BeginBatch() {
  if (OwnsBatch()) return;
  mu_.lock();
  batch_owner_.store(std::this_thread::get_id(), std::memory_order_release);
  batch_open_.store(true, std::memory_order_release);
}

Result<ElementSetStore::SetState*> ElementSetStore::MutableSet(
    const std::string& name) {
  if (catalog_.IsSegmented(name)) {
    return Status::Unimplemented(
        "mutating segmented set '" + name +
        "' is not supported; mutate an unsegmented database (or rebuild "
        "the segments offline)");
  }
  auto it = sets_.find(name);
  if (it == sets_.end()) {
    return Status::NotFound("no element set named '" + name + "'");
  }
  return &it->second;
}

Status ElementSetStore::ScanMeta(SetState* s) {
  SetMeta m;
  uint64_t min_start = UINT64_MAX;
  uint64_t max_end = 0;
  uint64_t mask = 0;
  bool sorted = true;
  bool any = false;
  std::vector<ElementRecord> recs;
  const size_t n_pages = s->set.file.pages().size();
  for (size_t pi = 0; pi < n_pages; ++pi) {
    PBITREE_RETURN_IF_ERROR(s->set.file.ReadPageRecords(bm_, pi, &recs));
    for (const ElementRecord& r : recs) {
      const int h = HeightOf(r.code);
      ++m.height_counts[h];
      mask |= uint64_t{1} << h;
      min_start = std::min(min_start, StartOf(r.code));
      max_end = std::max(max_end, EndOf(r.code));
      if (any && !DocOrdered(m.last_rec.code, r.code)) sorted = false;
      m.last_rec = r;
      any = true;
    }
  }
  m.loaded = true;
  s->meta = m;
  s->set.height_mask = mask;
  s->set.min_start = any ? min_start : UINT64_MAX;
  s->set.max_end = any ? max_end : 0;
  s->set.sorted_by_start = sorted;
  return Status::OK();
}

Status ElementSetStore::EnsureMeta(SetState* s) {
  if (s->meta.loaded) return Status::OK();
  return ScanMeta(s);
}

void ElementSetStore::SnapshotSet(const std::string& name, SetState* s) {
  if (snapshots_.count(name) > 0) return;
  SetSnapshot snap;
  snap.set = s->set;
  snap.meta = s->meta;
  snap.interval_stale = s->interval_stale;
  snapshots_.emplace(name, std::move(snap));
}

Status ElementSetStore::TrackPage(PageId pid) {
  if (batch_new_set_.count(pid) > 0 || tracked_.count(pid) > 0) {
    return Status::OK();
  }
  PBITREE_ASSIGN_OR_RETURN(Page * p, bm_->FetchPage(pid));
  std::vector<char> img(kPageSize);
  std::memcpy(img.data(), p->data(), kPageSize);
  tracked_.emplace(pid, std::move(img));
  return Status::OK();  // deliberately left pinned until the batch ends
}

void ElementSetStore::ReleaseTrackedPins() {
  for (const auto& [pid, img] : tracked_) {
    (void)bm_->UnpinPage(pid, /*dirty=*/false);
  }
}

Status ElementSetStore::AppendToSet(const std::string& name, SetState* s,
                                    const ElementRecord& rec) {
  BeginBatch();
  PBITREE_RETURN_IF_ERROR(EnsureMeta(s));
  SnapshotSet(name, s);
  if (!s->set.file.pages().empty()) {
    PBITREE_RETURN_IF_ERROR(TrackPage(s->set.file.pages().back()));
  }
  const size_t pages_before = s->set.file.pages().size();
  PBITREE_RETURN_IF_ERROR(s->set.file.Append(bm_, &rec));
  for (size_t i = pages_before; i < s->set.file.pages().size(); ++i) {
    const PageId pid = s->set.file.pages()[i];
    batch_new_pages_.push_back(pid);
    batch_new_set_.insert(pid);
  }
  const int h = HeightOf(rec.code);
  if (s->set.file.num_records() == 1) {
    s->set.sorted_by_start = true;
  } else if (!DocOrdered(s->meta.last_rec.code, rec.code)) {
    s->set.sorted_by_start = false;
  }
  ++s->meta.height_counts[h];
  s->meta.last_rec = rec;
  s->set.height_mask |= uint64_t{1} << h;
  s->set.min_start = std::min(s->set.min_start, StartOf(rec.code));
  s->set.max_end = std::max(s->set.max_end, EndOf(rec.code));
  if (s->code_index) {
    PBITREE_RETURN_IF_ERROR(s->code_index->Insert(bm_, rec));
  }
  s->interval_stale = true;
  s->dirty = true;
  return Status::OK();
}

Status ElementSetStore::InsertRecord(const std::string& name,
                                     const ElementRecord& rec) {
  // The lookup reads catalog_/sets_, which a concurrent thread's Commit
  // mutates under the writer lock — open the batch (taking that lock)
  // first. A validation failure leaves the batch open, like any other
  // failed mutation: the caller commits or rolls back.
  BeginBatch();
  PBITREE_ASSIGN_OR_RETURN(SetState * s, MutableSet(name));
  if (!IsValidCode(rec.code, s->set.spec)) {
    return Status::InvalidArgument(
        "record code is not a valid code of the set's PBiTree");
  }
  return AppendToSet(name, s, rec);
}

Result<ElementSetStore::RecordLoc> ElementSetStore::Locate(SetState* s,
                                                           Code code) {
  std::vector<ElementRecord> recs;
  const size_t n_pages = s->set.file.pages().size();
  for (size_t pi = 0; pi < n_pages; ++pi) {
    PBITREE_RETURN_IF_ERROR(s->set.file.ReadPageRecords(bm_, pi, &recs));
    for (size_t slot = 0; slot < recs.size(); ++slot) {
      if (recs[slot].code == code) {
        RecordLoc loc;
        loc.state = s;
        loc.page_index = pi;
        loc.slot = slot;
        loc.rec = recs[slot];
        return loc;
      }
    }
  }
  return Status::NotFound("no stored element with that code");
}

Status ElementSetStore::DeleteElement(const std::string& name, Code code) {
  BeginBatch();  // before the lookup: MutableSet reads Commit-mutated state
  PBITREE_ASSIGN_OR_RETURN(SetState * s, MutableSet(name));
  PBITREE_RETURN_IF_ERROR(EnsureMeta(s));
  PBITREE_ASSIGN_OR_RETURN(RecordLoc loc, Locate(s, code));
  SnapshotSet(name, s);
  PBITREE_RETURN_IF_ERROR(TrackPage(s->set.file.pages()[loc.page_index]));
  PBITREE_RETURN_IF_ERROR(
      s->set.file.RemoveRecordAt(bm_, loc.page_index, loc.slot));
  const int h = HeightOf(code);
  if (s->meta.height_counts[h] > 0) --s->meta.height_counts[h];
  if (s->meta.height_counts[h] == 0) {
    s->set.height_mask &= ~(uint64_t{1} << h);
  }
  if (s->code_index) {
    PBITREE_RETURN_IF_ERROR(s->code_index->Remove(bm_, loc.rec));
  }
  s->interval_stale = true;
  s->dirty = true;
  if (StartOf(code) == s->set.min_start || EndOf(code) == s->set.max_end) {
    s->needs_rescan = true;  // extremum gone; exact range needs a rescan
  }
  if (loc.rec == s->meta.last_rec) {
    // The sortedness sentinel was deleted; rescan now so a later append
    // in this batch compares against the real new tail.
    PBITREE_RETURN_IF_ERROR(ScanMeta(s));
    s->needs_rescan = false;
  }
  return Status::OK();
}

Status ElementSetStore::CollectInterval(int tree_height, CodeInterval interval,
                                        Code exclude,
                                        std::vector<RecordLoc>* out) {
  std::vector<ElementRecord> recs;
  for (auto& [name, st] : sets_) {
    if (st.set.spec.height != tree_height) continue;
    // Codes lie inside [min_start, max_end]; disjoint ranges can skip.
    if (st.set.min_start <= st.set.max_end &&
        (st.set.max_end < interval.lo || st.set.min_start > interval.hi)) {
      continue;
    }
    const size_t n_pages = st.set.file.pages().size();
    for (size_t pi = 0; pi < n_pages; ++pi) {
      PBITREE_RETURN_IF_ERROR(st.set.file.ReadPageRecords(bm_, pi, &recs));
      for (size_t slot = 0; slot < recs.size(); ++slot) {
        const Code c = recs[slot].code;
        if (c < interval.lo || c > interval.hi || c == exclude) continue;
        RecordLoc loc;
        loc.state = &st;
        loc.page_index = pi;
        loc.slot = slot;
        loc.rec = recs[slot];
        out->push_back(loc);
      }
    }
  }
  return Status::OK();
}

Result<Code> ElementSetStore::InsertChild(const std::string& name, Code parent,
                                          uint32_t tag, uint32_t doc) {
  BeginBatch();  // before the lookup: MutableSet reads Commit-mutated state
  PBITREE_ASSIGN_OR_RETURN(SetState * s, MutableSet(name));
  const PBiTreeSpec spec = s->set.spec;
  if (!IsValidCode(parent, spec)) {
    return Status::InvalidArgument(
        "parent is not a valid code of the set's PBiTree");
  }
  std::vector<RecordLoc> inside;
  PBITREE_RETURN_IF_ERROR(
      CollectInterval(spec.height, SubtreeInterval(parent), parent, &inside));
  // The new element must be exactly a child of `parent`: its subtree
  // may not touch any *stored* subtree below parent, across every set
  // of the same PBiTree (containment joins relate sets to each other).
  // The maximal stored subtrees are the siblings AllocateChildCode
  // places against.
  std::vector<Code> codes;
  codes.reserve(inside.size());
  for (const RecordLoc& loc : inside) codes.push_back(loc.rec.code);
  std::sort(codes.begin(), codes.end(),
            [](Code a, Code b) { return DocBefore(a, b); });
  codes.erase(std::unique(codes.begin(), codes.end()), codes.end());
  std::vector<Code> maximal;
  uint64_t covered_end = 0;
  bool covered_any = false;
  for (Code c : codes) {
    if (covered_any && StartOf(c) <= covered_end) continue;  // nested
    maximal.push_back(c);
    covered_end = EndOf(c);
    covered_any = true;
  }
  Result<Code> alloc = AllocateChildCode(parent, maximal, spec);
  if (alloc.ok()) {
    const Code code = *alloc;
    PBITREE_RETURN_IF_ERROR(
        AppendToSet(name, s, ElementRecord{code, tag, doc}));
    return code;
  }
  if (!alloc.status().IsSlackExhausted()) return alloc.status();
  return Rebinarize(name, s, parent, tag, doc);
}

Result<Code> ElementSetStore::Rebinarize(const std::string& name,
                                         SetState* target, Code parent,
                                         uint32_t tag, uint32_t doc) {
  const PBiTreeSpec spec = target->set.spec;
  if (HeightOf(parent) == 0) {
    return Status::SlackExhausted(
        "parent is a leaf of the PBiTree; its subtree cannot take children");
  }
  std::vector<RecordLoc> inside;
  PBITREE_RETURN_IF_ERROR(
      CollectInterval(spec.height, SubtreeInterval(parent), parent, &inside));

  // Rebuild the logical forest under `parent` from the stored codes.
  // Duplicate codes (the same logical node stored in several sets) form
  // ONE forest node and keep receiving one shared code. Pre-order =
  // (Start asc, height desc); a containment stack recovers the edges.
  std::vector<Code> order;
  order.reserve(inside.size());
  for (const RecordLoc& loc : inside) order.push_back(loc.rec.code);
  std::sort(order.begin(), order.end(),
            [](Code a, Code b) { return DocBefore(a, b); });
  order.erase(std::unique(order.begin(), order.end()), order.end());

  struct Node {
    Code old_code = kInvalidCode;  // kInvalidCode marks the new element
    std::vector<int> kids;
    uint64_t weight = 1;
  };
  std::vector<Node> nodes;
  nodes.reserve(order.size() + 1);
  std::vector<int> roots;
  std::vector<int> stack;
  for (Code c : order) {
    const int id = static_cast<int>(nodes.size());
    nodes.push_back(Node{c, {}, 1});
    while (!stack.empty() && StartOf(c) > EndOf(nodes[stack.back()].old_code)) {
      stack.pop_back();
    }
    if (stack.empty()) {
      roots.push_back(id);
    } else {
      nodes[stack.back()].kids.push_back(id);
    }
    stack.push_back(id);
  }
  // Pre-order gives every parent a smaller id than its children, so one
  // reverse sweep finalizes the subtree weights.
  for (int id = static_cast<int>(nodes.size()) - 1; id >= 0; --id) {
    for (int kid : nodes[id].kids) nodes[id].weight += nodes[kid].weight;
  }
  const int new_id = static_cast<int>(nodes.size());
  nodes.push_back(Node{});  // the element being inserted, last child
  roots.push_back(new_id);

  // Order-preserving weight-balanced embedding of the forest into the
  // free positions of parent's subtree. Each forest node gets a slot;
  // forest ancestry maps to slot-subtree ancestry, so every containment
  // relationship — within and across sets — is preserved exactly.
  std::vector<Code> assigned(nodes.size(), kInvalidCode);
  std::function<Status(Code, const std::vector<int>&)> embed_forest;
  std::function<Status(Code, const std::vector<int>&)> embed_split;
  embed_split = [&](Code slot, const std::vector<int>& forest) -> Status {
    // Distributes `forest` over slot's two child subtrees, splitting at
    // the point that balances the subtree weights (order preserved).
    if (forest.empty()) return Status::OK();
    const int h = HeightOf(slot);
    if (h == 0) {
      return Status::SlackExhausted(
          "subtree too full to re-binarize around the new element");
    }
    uint64_t total = 0;
    for (int id : forest) total += nodes[id].weight;
    uint64_t best_max = UINT64_MAX;
    size_t best_k = 0;
    uint64_t prefix = 0;
    for (size_t k = 0; k <= forest.size(); ++k) {
      if (k > 0) prefix += nodes[forest[k - 1]].weight;
      const uint64_t m = std::max(prefix, total - prefix);
      if (m < best_max) {
        best_max = m;
        best_k = k;
      }
    }
    const Code half = Code{1} << (h - 1);
    std::vector<int> left(forest.begin(), forest.begin() + best_k);
    std::vector<int> right(forest.begin() + best_k, forest.end());
    PBITREE_RETURN_IF_ERROR(embed_forest(slot - half, left));
    return embed_forest(slot + half, right);
  };
  embed_forest = [&](Code slot, const std::vector<int>& forest) -> Status {
    if (forest.empty()) return Status::OK();
    const int h = HeightOf(slot);
    uint64_t total = 0;
    for (int id : forest) total += nodes[id].weight;
    if (total > (uint64_t{2} << h) - 1) {  // capacity 2^(h+1) - 1
      return Status::SlackExhausted(
          "subtree too full to re-binarize around the new element");
    }
    if (forest.size() == 1) {
      const int id = forest[0];
      assigned[id] = slot;
      return embed_split(slot, nodes[id].kids);
    }
    return embed_split(slot, forest);
  };
  PBITREE_RETURN_IF_ERROR(embed_split(parent, roots));

  std::map<Code, Code> remap;
  for (size_t id = 0; id < nodes.size(); ++id) {
    if (nodes[id].old_code != kInvalidCode) {
      remap[nodes[id].old_code] = assigned[id];
    }
  }
  const Code new_code = assigned[new_id];

  // Apply: rewrite every relocated record in place (scan order is
  // untouched), then append the new element. Pages are tracked first so
  // both rollback and the commit log cover them.
  for (const RecordLoc& loc : inside) {
    const Code nc = remap[loc.rec.code];
    if (nc == loc.rec.code) continue;
    SetState* st = loc.state;
    SnapshotSet(st->name, st);
    PBITREE_RETURN_IF_ERROR(TrackPage(st->set.file.pages()[loc.page_index]));
    ElementRecord nr = loc.rec;
    nr.code = nc;
    PBITREE_RETURN_IF_ERROR(
        st->set.file.RewriteRecordAt(bm_, loc.page_index, loc.slot, nr));
    st->dirty = true;
    st->needs_rescan = true;  // heights/ranges/sortedness all changed
    st->interval_stale = true;
    if (st->code_index) {  // keys changed wholesale: rebuild lazily
      PBITREE_RETURN_IF_ERROR(st->code_index->Drop(bm_));
      st->code_index.reset();
    }
  }
  for (auto& [nm, st] : sets_) {
    if (st.needs_rescan && st.dirty) {
      // Keep in-batch metadata (last_rec, ranges) exact for later
      // mutations of this batch.
      PBITREE_RETURN_IF_ERROR(ScanMeta(&st));
      st.needs_rescan = false;
    }
  }
  PBITREE_RETURN_IF_ERROR(
      AppendToSet(name, target, ElementRecord{new_code, tag, doc}));
  return new_code;
}

Status ElementSetStore::Commit() {
  if (!batch_open_.load(std::memory_order_acquire)) return Status::OK();
  if (!OwnsBatch()) {
    return Status::InvalidArgument(
        "the open mutation batch belongs to another thread");
  }
  const bool any = !tracked_.empty() || !batch_new_pages_.empty();
  if (!any) {  // nothing changed: close without burning an epoch
    ReleaseTrackedPins();
    tracked_.clear();
    batch_new_pages_.clear();
    batch_new_set_.clear();
    snapshots_.clear();
    batch_open_.store(false, std::memory_order_release);
    mu_.unlock();
    return Status::OK();
  }

  // Phase 1 — prepare (any failure leaves the batch open and the old
  // state fully intact). Exact metadata for every set that needs it,
  // then the new catalog image on a copy.
  for (auto& [nm, st] : sets_) {
    if (st.dirty && st.needs_rescan) {
      PBITREE_RETURN_IF_ERROR(ScanMeta(&st));
      st.needs_rescan = false;
    }
  }
  Catalog cat = catalog_;
  for (auto& [nm, st] : sets_) {
    if (!st.dirty) continue;
    uint32_t extra = 0;
    if (Result<uint32_t> f = cat.EntryFlags(nm); f.ok()) {
      extra = *f & Catalog::kFlagHasReplicas;
    }
    PBITREE_RETURN_IF_ERROR(cat.Put(nm, st.set, extra));
  }
  const uint64_t new_epoch = epoch_.load(std::memory_order_acquire) + 1;

  // After-images of every modified page, straight from the pool (the
  // writer lock guarantees nobody changes them underneath us).
  std::vector<PageId> mods;
  mods.reserve(tracked_.size() + batch_new_pages_.size());
  for (const auto& [pid, img] : tracked_) mods.push_back(pid);
  for (PageId pid : batch_new_pages_) mods.push_back(pid);
  std::sort(mods.begin(), mods.end());
  mods.erase(std::unique(mods.begin(), mods.end()), mods.end());
  std::vector<std::pair<PageId, std::vector<char>>> images;
  images.reserve(mods.size());
  for (PageId pid : mods) {
    PBITREE_ASSIGN_OR_RETURN(Page * p, bm_->FetchPage(pid));
    std::vector<char> img(kPageSize);
    std::memcpy(img.data(), p->data(), kPageSize);
    PBITREE_RETURN_IF_ERROR(bm_->UnpinPage(pid, /*dirty=*/false));
    images.emplace_back(pid, std::move(img));
  }

  // Phase 2 — write-ahead log. The new chain takes fresh pages: the
  // previous commit's chain is retired only after the new header is
  // durable, so the old header's log pointer keeps naming an intact,
  // replayable chain until the instant the new header supersedes it —
  // a crash anywhere before that recovers the old state in full.
  DiskManager* disk = bm_->disk();
  const size_t n_images = images.size() + 1;  // + the header image
  const size_t stream_bytes = kLogHeaderBytes + n_images * kLogImageBytes;
  const size_t n_log = (stream_bytes + kLogPagePayload - 1) / kLogPagePayload;
  std::vector<PageId> log_pids;
  log_pids.reserve(n_log);
  for (size_t i = 0; i < n_log; ++i) {
    PBITREE_ASSIGN_OR_RETURN(PageId pid, disk->AllocatePage());
    log_pids.push_back(pid);
  }
  cat.set_epoch(new_epoch);
  cat.set_log(log_pids[0], static_cast<uint32_t>(n_log));
  std::vector<char> header_img(kPageSize);
  cat.RenderHeader(header_img.data(), disk->frontier());

  std::vector<char> stream;
  stream.reserve(stream_bytes);
  AppendPod<uint64_t>(&stream, kLogMagic);
  AppendPod<uint64_t>(&stream, new_epoch);
  AppendPod<uint32_t>(&stream, static_cast<uint32_t>(n_images));
  AppendPod<uint32_t>(&stream, 0);  // CRC patched below
  AppendPod<PageId>(&stream, 0);    // image 0: the new catalog header
  stream.insert(stream.end(), header_img.begin(), header_img.end());
  for (const auto& [pid, img] : images) {
    AppendPod<PageId>(&stream, pid);
    stream.insert(stream.end(), img.begin(), img.end());
  }
  const uint32_t crc = Crc32c(stream.data(), stream.size());
  std::memcpy(stream.data() + 20, &crc, sizeof(crc));

  // Write the chain, sync, and read it back: a commit only passes the
  // point of no return once the log is proven durable. Failure here —
  // including a torn log-page write caught by the read-back — frees
  // the chain and leaves the batch open (retry or roll back).
  Status log_status = Status::OK();
  size_t off = 0;
  for (size_t i = 0; i < n_log && log_status.ok(); ++i) {
    char page[kPageSize];
    std::memset(page, 0, sizeof(page));
    const PageId next = (i + 1 < n_log) ? log_pids[i + 1] : kInvalidPageId;
    const uint32_t chunk = static_cast<uint32_t>(
        std::min(kLogPagePayload, stream.size() - off));
    std::memcpy(page, &next, sizeof(next));
    std::memcpy(page + 4, &chunk, sizeof(chunk));
    std::memcpy(page + 8, stream.data() + off, chunk);
    log_status = disk->WritePage(log_pids[i], page);
    off += chunk;
  }
  if (log_status.ok()) log_status = disk->Sync();
  if (log_status.ok()) {
    std::vector<char> readback;
    readback.reserve(stream.size());
    for (size_t i = 0; i < n_log && log_status.ok(); ++i) {
      char page[kPageSize];
      log_status = disk->ReadPage(log_pids[i], page);
      if (!log_status.ok()) break;
      const uint32_t chunk = ReadPod<uint32_t>(page + 4);
      if (chunk > kLogPagePayload) {
        log_status = Status::Corruption("commit log read-back mismatch");
        break;
      }
      readback.insert(readback.end(), page + 8, page + 8 + chunk);
    }
    if (log_status.ok() &&
        (readback.size() != stream.size() ||
         std::memcmp(readback.data(), stream.data(), stream.size()) != 0)) {
      log_status = Status::Corruption("commit log read-back mismatch");
    }
  }
  if (!log_status.ok()) {
    for (PageId pid : log_pids) (void)disk->FreePage(pid);
    return Status::IOError("commit log could not be made durable (" +
                           log_status.ToString() + "); batch left open");
  }

  // Phase 3 — publish. The new header carries the epoch and log
  // pointer that make the chain above discoverable, so it must be
  // durable BEFORE any in-place data write: up to this sync a crash
  // finds the old header naming the old chain (the old state, in
  // full); past it, recovery replays the new log over any torn
  // in-place write. Its recovery-critical scalars sit in the first
  // half of the page, which even a torn header write leaves intact. A
  // header write that fails with the process alive is still safe to
  // back out of — the on-disk header was never replaced — so the pool
  // copy is restored, the chain freed, and the batch stays open.
  Status publish = Status::OK();
  if (Result<Page*> hp = bm_->FetchPage(0); hp.ok()) {
    std::memcpy((*hp)->data(), header_img.data(), kPageSize);
    publish = bm_->UnpinPage(0, /*dirty=*/true);
    if (publish.ok()) publish = bm_->FlushPage(0);
    if (publish.ok()) publish = disk->Sync();
    if (!publish.ok()) {
      std::vector<char> old_img(kPageSize);
      catalog_.RenderHeader(old_img.data(), disk->frontier());
      if (Result<Page*> rp = bm_->FetchPage(0); rp.ok()) {
        std::memcpy((*rp)->data(), old_img.data(), kPageSize);
        (void)bm_->UnpinPage(0, /*dirty=*/true);
      }
    }
  } else {
    publish = hp.status();
  }
  if (!publish.ok()) {
    for (PageId pid : log_pids) (void)disk->FreePage(pid);
    return Status::IOError("commit header could not be published (" +
                           publish.ToString() + "); batch left open");
  }

  // Phase 4 — point of no return. The batch is committed: even if
  // every in-place write below fails or tears, reopening the database
  // replays the now-discoverable verified log. Apply everything,
  // remember the first error, finalize the in-memory state regardless.
  Status apply = Status::OK();
  auto note = [&apply](Status s) {
    if (apply.ok() && !s.ok()) apply = std::move(s);
  };
  for (const auto& [pid, img] : images) note(bm_->FlushPage(pid));
  note(disk->Sync());
  for (PageId pid : live_log_pages_) note(disk->FreePage(pid));
  live_log_pages_ = std::move(log_pids);

  catalog_ = std::move(cat);
  for (auto& [nm, st] : sets_) {
    if (st.dirty) {
      st.dirty = false;
      st.needs_rescan = false;
    }
  }
  ReleaseTrackedPins();
  tracked_.clear();
  batch_new_pages_.clear();
  batch_new_set_.clear();
  snapshots_.clear();
  epoch_.store(new_epoch, std::memory_order_release);
  batch_open_.store(false, std::memory_order_release);
  mu_.unlock();
  return apply;
}

Status ElementSetStore::Rollback() {
  if (!batch_open_.load(std::memory_order_acquire)) return Status::OK();
  if (!OwnsBatch()) {
    return Status::InvalidArgument(
        "the open mutation batch belongs to another thread");
  }
  Status first = Status::OK();
  auto note = [&first](Status s) {
    if (first.ok() && !s.ok()) first = std::move(s);
  };
  // Byte-exact restore of every pre-existing page we touched...
  for (const auto& [pid, img] : tracked_) {
    Result<Page*> p = bm_->FetchPage(pid);
    if (!p.ok()) {
      note(p.status());
      continue;
    }
    std::memcpy((*p)->data(), img.data(), kPageSize);
    note(bm_->UnpinPage(pid, /*dirty=*/true));
  }
  ReleaseTrackedPins();
  // ...discard of every page the batch allocated...
  for (PageId pid : batch_new_pages_) note(bm_->DeletePage(pid));
  // ...and of all derived in-memory state.
  for (const auto& [nm, snap] : snapshots_) {
    SetState& st = sets_[nm];
    st.set = snap.set;
    st.meta = snap.meta;
    st.interval_stale = snap.interval_stale;
    st.dirty = false;
    st.needs_rescan = false;
    if (st.code_index) {  // saw uncommitted inserts/removes: rebuild lazily
      note(st.code_index->Drop(bm_));
      st.code_index.reset();
    }
  }
  tracked_.clear();
  batch_new_pages_.clear();
  batch_new_set_.clear();
  snapshots_.clear();
  batch_open_.store(false, std::memory_order_release);
  mu_.unlock();
  return first;
}

Result<BPTree*> ElementSetStore::EnsureCodeIndex(const std::string& name) {
  // Index builds write pages, and even the set lookup reads state a
  // concurrent Commit mutates (catalog_, sets_): take the writer lock
  // before touching either, unless this thread's batch already holds it.
  std::unique_lock<std::shared_mutex> guard;
  if (!OwnsBatch()) guard = std::unique_lock<std::shared_mutex>(mu_);
  PBITREE_ASSIGN_OR_RETURN(SetState * s, MutableSet(name));
  if (s->code_index) return &*s->code_index;
  PBITREE_ASSIGN_OR_RETURN(BPTree tree,
                           BPTree::CreateEmpty(bm_, KeyKind::kCode));
  std::vector<ElementRecord> recs;
  const size_t n_pages = s->set.file.pages().size();
  for (size_t pi = 0; pi < n_pages; ++pi) {
    PBITREE_RETURN_IF_ERROR(s->set.file.ReadPageRecords(bm_, pi, &recs));
    for (const ElementRecord& r : recs) {
      PBITREE_RETURN_IF_ERROR(tree.Insert(bm_, r));
    }
  }
  s->code_index = tree;
  return &*s->code_index;
}

Result<IntervalIndex*> ElementSetStore::EnsureIntervalIndex(
    const std::string& name) {
  // Same lock-before-lookup discipline as EnsureCodeIndex.
  std::unique_lock<std::shared_mutex> guard;
  if (!OwnsBatch()) guard = std::unique_lock<std::shared_mutex>(mu_);
  PBITREE_ASSIGN_OR_RETURN(SetState * s, MutableSet(name));
  if (s->interval_index && !s->interval_stale) return &*s->interval_index;
  if (s->interval_index) {
    PBITREE_RETURN_IF_ERROR(s->interval_index->Drop(bm_));
    s->interval_index.reset();
  }
  if (s->set.file.num_records() == 0) {
    return Status::InvalidArgument("cannot build an interval index over an "
                                   "empty element set");
  }
  if (s->set.sorted_by_start) {
    PBITREE_ASSIGN_OR_RETURN(IntervalIndex idx,
                             IntervalIndex::BulkLoad(bm_, s->set.file));
    s->interval_index = idx;
  } else {
    // The static index wants Start-sorted input; stage a sorted copy.
    std::vector<ElementRecord> all;
    std::vector<ElementRecord> recs;
    const size_t n_pages = s->set.file.pages().size();
    for (size_t pi = 0; pi < n_pages; ++pi) {
      PBITREE_RETURN_IF_ERROR(s->set.file.ReadPageRecords(bm_, pi, &recs));
      all.insert(all.end(), recs.begin(), recs.end());
    }
    std::stable_sort(all.begin(), all.end(),
                     [](const ElementRecord& a, const ElementRecord& b) {
                       return DocBefore(a.code, b.code);
                     });
    PBITREE_ASSIGN_OR_RETURN(HeapFile tmp, HeapFile::Create(bm_));
    {
      HeapFile::Appender app(bm_, &tmp);
      PBITREE_RETURN_IF_ERROR(app.AppendElements(all));
      PBITREE_RETURN_IF_ERROR(app.Finish());
    }
    Result<IntervalIndex> idx = IntervalIndex::BulkLoad(bm_, tmp);
    Status drop = tmp.Drop(bm_);
    PBITREE_RETURN_IF_ERROR(idx.status());
    PBITREE_RETURN_IF_ERROR(drop);
    s->interval_index = *idx;
  }
  s->interval_stale = false;
  return &*s->interval_index;
}

}  // namespace pbitree
