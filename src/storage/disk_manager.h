#ifndef PBITREE_STORAGE_DISK_MANAGER_H_
#define PBITREE_STORAGE_DISK_MANAGER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/page.h"

namespace pbitree {

/// \brief Counters of physical page I/O performed by a DiskManager.
///
/// These are the primary cost metric of the reproduction: the paper's
/// elapsed times are disk-bound, so relative algorithm performance is
/// captured machine-independently by page read/write counts.
struct DiskStats {
  uint64_t page_reads = 0;
  uint64_t page_writes = 0;
  uint64_t pages_allocated = 0;
  uint64_t pages_freed = 0;

  uint64_t TotalIO() const { return page_reads + page_writes; }
};

/// \brief Paged database file with allocate/free, read/write and exact
/// I/O accounting — the Minibase "DB" / storage-manager stand-in.
///
/// Layout: page 0 is reserved (header); data pages start at 1. Freed
/// pages go to an in-memory free list and are reused before the file is
/// extended. The backing store is either a real file (durable, used by
/// tools) or an in-memory vector (used by tests and benches; the buffer
/// manager still counts every transfer as a physical I/O, emulating the
/// paper's raw-disk Minibase setup without OS cache interference).
class DiskManager {
 public:
  /// Creates/truncates a disk-backed database at `path`. The file is
  /// deleted on destruction (scratch semantics — what benchmarks use).
  static Result<DiskManager*> Open(const std::string& path);

  /// Opens (or creates) a persistent database at `path`: the file is
  /// kept on destruction and existing pages are preserved. The caller
  /// (normally the Catalog) must restore the allocation frontier via
  /// SetFrontier before allocating; freed-page lists are not persisted
  /// (space is reclaimed by offline compaction).
  static Result<DiskManager*> OpenExisting(const std::string& path);

  /// Creates a memory-backed database (no file). All I/O is still
  /// counted; this is the default substrate for tests and benchmarks.
  static DiskManager* OpenInMemory();

  ~DiskManager();

  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  /// Allocates a page and returns its id (reusing freed pages first).
  Result<PageId> AllocatePage();

  /// Returns a page to the free list. Double-free is a checked error.
  Status FreePage(PageId page_id);

  /// Reads page `page_id` into `out` (exactly kPageSize bytes).
  Status ReadPage(PageId page_id, char* out);

  /// Writes kPageSize bytes from `in` to page `page_id`.
  Status WritePage(PageId page_id, const char* in);

  /// Number of pages ever allocated and not freed.
  uint64_t num_live_pages() const {
    return stats_.pages_allocated - stats_.pages_freed;
  }

  /// Highest page id handed out so far plus one (file size in pages).
  PageId frontier() const { return next_page_id_; }

  /// Restores the allocation frontier after reopening a persistent
  /// database (ids below it are considered live). Only grows.
  void SetFrontier(PageId frontier);

  const DiskStats& stats() const { return stats_; }
  void ResetStats() { stats_ = DiskStats(); }

 private:
  DiskManager(std::string path, int fd, bool unlink_on_close);

  Status EnsureCapacity(PageId page_id);

  std::string path_;  // empty for in-memory databases
  int fd_;            // -1 for in-memory databases
  bool unlink_on_close_ = true;
  std::vector<char> mem_;
  std::vector<PageId> free_list_;
  std::vector<bool> is_free_;
  PageId next_page_id_ = 1;  // page 0 reserved for the header
  DiskStats stats_;
};

}  // namespace pbitree

#endif  // PBITREE_STORAGE_DISK_MANAGER_H_
