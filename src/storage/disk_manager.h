#ifndef PBITREE_STORAGE_DISK_MANAGER_H_
#define PBITREE_STORAGE_DISK_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/io_backend.h"
#include "storage/page.h"

namespace pbitree {

/// \brief Counters of physical page I/O performed by a DiskManager.
///
/// These are the primary cost metric of the reproduction: the paper's
/// elapsed times are disk-bound, so relative algorithm performance is
/// captured machine-independently by page read/write counts.
///
/// This is the plain snapshot type handed to callers; the live counters
/// inside DiskManager are atomics (AtomicDiskStats) so that parallel
/// workers can issue page I/O without racing the accounting.
struct DiskStats {
  uint64_t page_reads = 0;
  uint64_t page_writes = 0;
  uint64_t pages_allocated = 0;
  uint64_t pages_freed = 0;

  uint64_t TotalIO() const { return page_reads + page_writes; }
};

/// \brief The live, concurrently-updated counterpart of DiskStats.
struct AtomicDiskStats {
  std::atomic<uint64_t> page_reads{0};
  std::atomic<uint64_t> page_writes{0};
  std::atomic<uint64_t> pages_allocated{0};
  std::atomic<uint64_t> pages_freed{0};

  DiskStats Snapshot() const {
    DiskStats s;
    s.page_reads = page_reads.load(std::memory_order_relaxed);
    s.page_writes = page_writes.load(std::memory_order_relaxed);
    s.pages_allocated = pages_allocated.load(std::memory_order_relaxed);
    s.pages_freed = pages_freed.load(std::memory_order_relaxed);
    return s;
  }

  void Reset() {
    page_reads.store(0, std::memory_order_relaxed);
    page_writes.store(0, std::memory_order_relaxed);
    pages_allocated.store(0, std::memory_order_relaxed);
    pages_freed.store(0, std::memory_order_relaxed);
  }
};

/// \brief Bounded-retry policy for transient backend faults.
///
/// Only kIOError is retried (kCorruption means the bytes arrived but
/// are wrong — retrying reads the same wrong bytes). Each retry doubles
/// the backoff; counted in the io_retries observability counter. When
/// the budget runs out the operation fails with kRetryExhausted.
struct RetryPolicy {
  int max_attempts = 4;           // 1 initial try + 3 retries
  uint32_t backoff_initial_us = 0;  // first retry delay (0 in tests: no sleep)
  uint32_t backoff_max_us = 1000;
};

/// \brief Paged database with allocate/free, read/write and exact I/O
/// accounting — the Minibase "DB" / storage-manager stand-in.
///
/// Layout: page 0 is reserved (header); data pages start at 1. Freed
/// pages go to an in-memory free list and are reused before the store
/// is extended. Physical byte transfer is delegated to a pluggable
/// IoBackend (file-backed, in-memory, or a fault-injecting decorator);
/// this class layers on top of it:
///  - allocation (free list, frontier) and logical range checks,
///  - a per-page CRC32C checksum recorded on write and verified on
///    every read (torn-write detection → kCorruption),
///  - bounded retry with exponential backoff for transient kIOError.
///
/// The checksum table is kept out of band (in memory, not in the page
/// image), so the on-disk format is unchanged: files written by earlier
/// versions read back bit-identically, and pages that predate this
/// process simply have no entry and skip verification.
class DiskManager {
 public:
  /// Creates/truncates a disk-backed database at `path`. The file is
  /// deleted on destruction (scratch semantics — what benchmarks use).
  static StatusOr<DiskManager*> Open(const std::string& path);

  /// Opens (or creates) a persistent database at `path`: the file is
  /// kept on destruction and existing pages are preserved. The caller
  /// (normally the Catalog) must restore the allocation frontier via
  /// SetFrontier before allocating; freed-page lists are not persisted
  /// (space is reclaimed by offline compaction).
  static StatusOr<DiskManager*> OpenExisting(const std::string& path);

  /// Creates a memory-backed database (no file). All I/O is still
  /// counted; this is the default substrate for tests and benchmarks.
  static DiskManager* OpenInMemory();

  /// Wraps an already-constructed backend (the --backend=file|mem CLI
  /// path and fault-injection tests). When `restore_frontier` is set
  /// the frontier is initialised from backend->SizeInPages().
  static StatusOr<DiskManager*> OpenWithBackend(
      std::unique_ptr<IoBackend> backend, bool restore_frontier);

  ~DiskManager();

  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  /// Allocates a page and returns its id (reusing freed pages first).
  StatusOr<PageId> AllocatePage();

  /// Returns a page to the free list. Double-free is a checked error.
  Status FreePage(PageId page_id);

  /// Reads page `page_id` into `out` (exactly kPageSize bytes) and
  /// verifies its checksum when one is on record.
  Status ReadPage(PageId page_id, char* out);

  /// Physical read for the buffer pool's readahead: the full
  /// checksum/retry path of ReadPage, but the *logical* page-read is
  /// not counted here. The consumer books it via CountDeferredRead when
  /// the prefetched page is actually fetched, so page-read counts — the
  /// paper's cost metric — are identical with readahead on or off. A
  /// prefetched page that is never consumed is evicted uncounted, and
  /// the eventual ordinary ReadPage counts it exactly once.
  Status ReadPagePrefetch(PageId page_id, char* out);

  /// Books the logical page read deferred by ReadPagePrefetch, billed
  /// (via obs::Count) to the calling operation's MetricScope.
  void CountDeferredRead();

  /// Writes kPageSize bytes from `in` to page `page_id` and records the
  /// page's checksum.
  Status WritePage(PageId page_id, const char* in);

  /// Durability barrier: flushes the backend (fsync for files).
  Status Sync();

  /// Number of pages ever allocated and not freed.
  uint64_t num_live_pages() const {
    return stats_.pages_allocated.load(std::memory_order_relaxed) -
           stats_.pages_freed.load(std::memory_order_relaxed);
  }

  /// Highest page id handed out so far plus one (file size in pages).
  PageId frontier() const {
    return next_page_id_.load(std::memory_order_acquire);
  }

  /// Restores the allocation frontier after reopening a persistent
  /// database (ids below it are considered live). Only grows.
  void SetFrontier(PageId frontier);

  /// Consistent point-in-time snapshot of the I/O counters. Returned by
  /// value so existing delta arithmetic (`after - before`) keeps
  /// working against the atomic live counters.
  DiskStats stats() const { return stats_.Snapshot(); }
  void ResetStats() { stats_.Reset(); }

  /// The backend this manager performs I/O through. Tests use this to
  /// reach a FaultInjectingBackend's Arm/Disarm.
  IoBackend* backend() { return backend_.get(); }

  /// Replaces the retry policy (tests shrink the budget to force
  /// kRetryExhausted quickly).
  void set_retry_policy(const RetryPolicy& p) { retry_ = p; }

 private:
  explicit DiskManager(std::unique_ptr<IoBackend> backend);

  /// Runs `op` (a backend page transfer) under the retry policy.
  Status WithRetry(const char* what, PageId page_id,
                   const std::function<Status()>& op);

  /// Shared body of ReadPage/ReadPagePrefetch: range check, checksum
  /// verification and bounded retry — everything except the logical
  /// read count.
  Status ReadPageVerified(PageId page_id, char* out);

  std::unique_ptr<IoBackend> backend_;
  RetryPolicy retry_;

  /// Guards allocation state (free list, free map, frontier growth).
  std::mutex alloc_mu_;
  std::vector<PageId> free_list_;
  std::vector<bool> is_free_;
  std::atomic<PageId> next_page_id_{1};  // page 0 reserved for the header

  /// Out-of-band per-page CRC32C table: recorded on successful write,
  /// dropped on free, verified on read when present.
  mutable std::shared_mutex crc_mu_;
  std::unordered_map<PageId, uint32_t> page_crc_;

  AtomicDiskStats stats_;
};

}  // namespace pbitree

#endif  // PBITREE_STORAGE_DISK_MANAGER_H_
