#ifndef PBITREE_STORAGE_DISK_MANAGER_H_
#define PBITREE_STORAGE_DISK_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/page.h"

namespace pbitree {

/// \brief Counters of physical page I/O performed by a DiskManager.
///
/// These are the primary cost metric of the reproduction: the paper's
/// elapsed times are disk-bound, so relative algorithm performance is
/// captured machine-independently by page read/write counts.
///
/// This is the plain snapshot type handed to callers; the live counters
/// inside DiskManager are atomics (AtomicDiskStats) so that parallel
/// workers can issue page I/O without racing the accounting.
struct DiskStats {
  uint64_t page_reads = 0;
  uint64_t page_writes = 0;
  uint64_t pages_allocated = 0;
  uint64_t pages_freed = 0;

  uint64_t TotalIO() const { return page_reads + page_writes; }
};

/// \brief The live, concurrently-updated counterpart of DiskStats.
struct AtomicDiskStats {
  std::atomic<uint64_t> page_reads{0};
  std::atomic<uint64_t> page_writes{0};
  std::atomic<uint64_t> pages_allocated{0};
  std::atomic<uint64_t> pages_freed{0};

  DiskStats Snapshot() const {
    DiskStats s;
    s.page_reads = page_reads.load(std::memory_order_relaxed);
    s.page_writes = page_writes.load(std::memory_order_relaxed);
    s.pages_allocated = pages_allocated.load(std::memory_order_relaxed);
    s.pages_freed = pages_freed.load(std::memory_order_relaxed);
    return s;
  }

  void Reset() {
    page_reads.store(0, std::memory_order_relaxed);
    page_writes.store(0, std::memory_order_relaxed);
    pages_allocated.store(0, std::memory_order_relaxed);
    pages_freed.store(0, std::memory_order_relaxed);
  }
};

/// \brief Paged database file with allocate/free, read/write and exact
/// I/O accounting — the Minibase "DB" / storage-manager stand-in.
///
/// Layout: page 0 is reserved (header); data pages start at 1. Freed
/// pages go to an in-memory free list and are reused before the file is
/// extended. The backing store is either a real file (durable, used by
/// tools) or an in-memory vector (used by tests and benches; the buffer
/// manager still counts every transfer as a physical I/O, emulating the
/// paper's raw-disk Minibase setup without OS cache interference).
class DiskManager {
 public:
  /// Creates/truncates a disk-backed database at `path`. The file is
  /// deleted on destruction (scratch semantics — what benchmarks use).
  static Result<DiskManager*> Open(const std::string& path);

  /// Opens (or creates) a persistent database at `path`: the file is
  /// kept on destruction and existing pages are preserved. The caller
  /// (normally the Catalog) must restore the allocation frontier via
  /// SetFrontier before allocating; freed-page lists are not persisted
  /// (space is reclaimed by offline compaction).
  static Result<DiskManager*> OpenExisting(const std::string& path);

  /// Creates a memory-backed database (no file). All I/O is still
  /// counted; this is the default substrate for tests and benchmarks.
  static DiskManager* OpenInMemory();

  ~DiskManager();

  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  /// Allocates a page and returns its id (reusing freed pages first).
  Result<PageId> AllocatePage();

  /// Returns a page to the free list. Double-free is a checked error.
  Status FreePage(PageId page_id);

  /// Reads page `page_id` into `out` (exactly kPageSize bytes).
  Status ReadPage(PageId page_id, char* out);

  /// Writes kPageSize bytes from `in` to page `page_id`.
  Status WritePage(PageId page_id, const char* in);

  /// Number of pages ever allocated and not freed.
  uint64_t num_live_pages() const {
    return stats_.pages_allocated.load(std::memory_order_relaxed) -
           stats_.pages_freed.load(std::memory_order_relaxed);
  }

  /// Highest page id handed out so far plus one (file size in pages).
  PageId frontier() const {
    return next_page_id_.load(std::memory_order_acquire);
  }

  /// Restores the allocation frontier after reopening a persistent
  /// database (ids below it are considered live). Only grows.
  void SetFrontier(PageId frontier);

  /// Consistent point-in-time snapshot of the I/O counters. Returned by
  /// value so existing delta arithmetic (`after - before`) keeps
  /// working against the atomic live counters.
  DiskStats stats() const { return stats_.Snapshot(); }
  void ResetStats() { stats_.Reset(); }

 private:
  DiskManager(std::string path, int fd, bool unlink_on_close);

  std::string path_;  // empty for in-memory databases
  int fd_;            // -1 for in-memory databases
  bool unlink_on_close_ = true;

  /// Guards the in-memory backing store against concurrent resize:
  /// page transfers take it shared, capacity growth takes it exclusive.
  /// File-backed databases use pread/pwrite, which need no locking.
  mutable std::shared_mutex mem_mu_;
  std::vector<char> mem_;

  /// Guards allocation state (free list, free map, frontier growth).
  std::mutex alloc_mu_;
  std::vector<PageId> free_list_;
  std::vector<bool> is_free_;
  std::atomic<PageId> next_page_id_{1};  // page 0 reserved for the header

  AtomicDiskStats stats_;
};

}  // namespace pbitree

#endif  // PBITREE_STORAGE_DISK_MANAGER_H_
