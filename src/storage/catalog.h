#ifndef PBITREE_STORAGE_CATALOG_H_
#define PBITREE_STORAGE_CATALOG_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "join/element_set.h"
#include "storage/buffer_manager.h"

namespace pbitree {

/// \brief Persistent directory of named element sets, stored on the
/// database header page (page 0) — what turns the scratch page file
/// into a reopenable database of encoded documents.
///
/// Each entry records a set's name, first heap page, counts, the
/// PBiTree height its codes live in, its height mask / range metadata
/// and a sorted flag — everything needed to reconstruct an ElementSet
/// after a restart (HeapFile::Attach rebuilds the page directory).
/// The header also persists the page-allocation frontier; freed-page
/// lists are not persisted (reclaim space by offline compaction).
///
/// Capacity: 42 entries (one header page). Names are at most 31 bytes.
class Catalog {
 public:
  static constexpr size_t kMaxEntries = 42;
  static constexpr size_t kMaxNameLen = 31;

  Catalog() = default;

  /// Loads the catalog from page 0; a fresh database (zero/foreign
  /// magic) yields an empty catalog.
  static StatusOr<Catalog> Load(BufferManager* bm);

  /// Writes the catalog and the current allocation frontier to page 0
  /// and flushes the pool — the database is reopenable afterwards.
  Status Save(BufferManager* bm);

  /// Registers (or replaces) a named element set. The set's pages are
  /// NOT copied; the catalog only records the metadata.
  Status Put(const std::string& name, const ElementSet& set);

  /// Reconstructs a named element set. NotFound if absent.
  StatusOr<ElementSet> Get(BufferManager* bm, const std::string& name) const;

  /// Removes an entry (the set's pages are not freed; drop them first
  /// if the data itself should go).
  Status Remove(const std::string& name);

  bool Contains(const std::string& name) const {
    return entries_.count(name) > 0;
  }
  std::vector<std::string> Names() const;
  size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    PageId first_page = kInvalidPageId;
    uint64_t num_records = 0;
    uint64_t num_pages = 0;
    int32_t tree_height = 0;
    uint32_t flags = 0;  // bit 0: sorted_by_start
    uint64_t height_mask = 0;
    uint64_t min_start = UINT64_MAX;
    uint64_t max_end = 0;
  };

  std::map<std::string, Entry> entries_;
};

}  // namespace pbitree

#endif  // PBITREE_STORAGE_CATALOG_H_
