#ifndef PBITREE_STORAGE_CATALOG_H_
#define PBITREE_STORAGE_CATALOG_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "join/element_set.h"
#include "storage/buffer_manager.h"

namespace pbitree {

/// \brief Persistent directory of named element sets, stored on the
/// database header page (page 0) — what turns the scratch page file
/// into a reopenable database of encoded documents.
///
/// Each entry records a set's name, first heap page, counts, the
/// PBiTree height its codes live in, its height mask / range metadata
/// and a sorted flag — everything needed to reconstruct an ElementSet
/// after a restart (HeapFile::Attach rebuilds the page directory).
/// The header also persists the page-allocation frontier; freed-page
/// lists are not persisted (reclaim space by offline compaction).
///
/// Capacity: 42 entries (one header page). Names are at most 31 bytes.
///
/// Code-space sharding (see storage/segment_store.h): the header also
/// persists a store-wide `segment_level` l (offset 20, previously zero
/// padding — files written before sharding read back as level 0, the
/// unsegmented layout). In a segmented store the main database carries
/// one *master* entry per set (flags bit 1, no heap pages of its own,
/// aggregate metadata over all segments) while each of the 2^l segment
/// files keeps an ordinary per-segment catalog of its local pieces.
/// Header layout, version 2 (version 1 files — entries at byte 24, no
/// epoch/log/CRC — still load):
///   0  u64 magic "PBITREE1"      8  u32 version (2)
///   12 u32 entry count           16 u32 allocation frontier
///   20 u32 segment_level         24 u64 snapshot epoch
///   32 u32 log_first_page        36 u32 log_page_count
///   40 u32 header CRC32C (computed over the page with this field 0)
///   48 entries, 96 bytes each.
/// Every recovery-critical scalar sits in the first half of the page,
/// which the torn-write fault model leaves intact; the CRC catches the
/// torn second half (and any other partial header write).
class Catalog {
 public:
  static constexpr size_t kMaxEntries = 42;
  static constexpr size_t kMaxNameLen = 31;

  /// v2 header field offsets, shared with the element store's raw-disk
  /// recovery (which parses page 0 without a Catalog instance).
  static constexpr size_t kVersionOffset = 8;
  static constexpr size_t kEpochOffset = 24;
  static constexpr size_t kLogFirstOffset = 32;
  static constexpr size_t kLogCountOffset = 36;
  static constexpr size_t kCrcOffset = 40;

  /// The magic every header page starts with.
  static constexpr uint64_t kMagic = 0x5042495452454531ULL;  // "PBITREE1"

  /// True when `page` (kPageSize bytes of raw page 0) carries a v2
  /// header whose CRC matches its contents. v1 headers (no CRC) and
  /// foreign pages return false.
  static bool HeaderCrcValid(const char* page);

  /// Entry flag bits.
  static constexpr uint32_t kFlagSorted = 1u;       // sorted_by_start
  static constexpr uint32_t kFlagSegmented = 2u;    // master entry (no pages)
  static constexpr uint32_t kFlagHasReplicas = 4u;  // segment piece holds
                                                    // foreign-designated
                                                    // ancestor replicas
  static constexpr uint32_t kFlagCodecFoRDelta = 8u;  // pages use the
                                                      // kFoRDelta codec
                                                      // (absent = raw)

  Catalog() = default;

  /// Loads the catalog from page 0; a fresh database (zero/foreign
  /// magic) yields an empty catalog.
  static StatusOr<Catalog> Load(BufferManager* bm);

  /// Writes the catalog and the current allocation frontier to page 0
  /// and flushes the pool — the database is reopenable afterwards.
  Status Save(BufferManager* bm);

  /// Registers (or replaces) a named element set. The set's pages are
  /// NOT copied; the catalog only records the metadata. `extra_flags`
  /// ORs additional flag bits (e.g. kFlagHasReplicas) into the entry.
  Status Put(const std::string& name, const ElementSet& set,
             uint32_t extra_flags = 0);

  /// Reconstructs a named element set. NotFound if absent;
  /// InvalidArgument for a master entry (open via SegmentStore).
  StatusOr<ElementSet> Get(BufferManager* bm, const std::string& name) const;

  /// Raw flag bits of an entry (segment pieces carry kFlagHasReplicas).
  StatusOr<uint32_t> EntryFlags(const std::string& name) const;

  /// Aggregate metadata of a segmented set, recorded in the main
  /// database's master entry: native record count (replicas excluded),
  /// total stored pages (replicas included) and the union range/height
  /// metadata the planner needs.
  struct SegmentedSetInfo {
    uint64_t num_records = 0;
    uint64_t num_pages = 0;
    int32_t tree_height = 0;
    bool sorted_by_start = false;
    uint64_t height_mask = 0;
    uint64_t min_start = UINT64_MAX;
    uint64_t max_end = 0;
  };

  /// Registers (or replaces) a master entry for a segmented set.
  Status PutMaster(const std::string& name, const SegmentedSetInfo& info);

  /// Reads a master entry back. NotFound if absent; InvalidArgument if
  /// the entry is an ordinary (unsegmented) set.
  StatusOr<SegmentedSetInfo> GetMaster(const std::string& name) const;

  /// True when `name` exists and is a master (segmented) entry.
  bool IsSegmented(const std::string& name) const;

  /// Store-wide code-space sharding level l (2^l segment files);
  /// 0 = unsegmented, the layout every pre-sharding database has.
  int segment_level() const { return static_cast<int>(segment_level_); }
  void set_segment_level(int l) { segment_level_ = static_cast<uint32_t>(l); }

  /// Snapshot epoch: bumped once per committed mutation batch (see
  /// storage/element_store.h). Build-once databases stay at 0.
  uint64_t epoch() const { return epoch_; }
  void set_epoch(uint64_t e) { epoch_ = e; }

  /// Physical-redo recovery log of the most recent commit: first page of
  /// the log chain and its page count. kInvalidPageId/0 = no log.
  PageId log_first_page() const { return log_first_page_; }
  uint32_t log_page_count() const { return log_page_count_; }
  void set_log(PageId first, uint32_t count) {
    log_first_page_ = first;
    log_page_count_ = count;
  }

  /// Renders the v2 header page image (kPageSize bytes, CRC stamped)
  /// without touching storage — what Save writes through the pool and
  /// what the element store embeds in its commit log so recovery can
  /// redo the header byte-for-byte.
  void RenderHeader(char* page, PageId frontier) const;

  /// Removes an entry (the set's pages are not freed; drop them first
  /// if the data itself should go).
  Status Remove(const std::string& name);

  bool Contains(const std::string& name) const {
    return entries_.count(name) > 0;
  }
  std::vector<std::string> Names() const;
  size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    PageId first_page = kInvalidPageId;
    uint64_t num_records = 0;
    uint64_t num_pages = 0;
    int32_t tree_height = 0;
    uint32_t flags = 0;  // bit 0: sorted_by_start
    uint64_t height_mask = 0;
    uint64_t min_start = UINT64_MAX;
    uint64_t max_end = 0;
  };

  std::map<std::string, Entry> entries_;
  uint32_t segment_level_ = 0;
  uint64_t epoch_ = 0;
  PageId log_first_page_ = kInvalidPageId;
  uint32_t log_page_count_ = 0;
};

}  // namespace pbitree

#endif  // PBITREE_STORAGE_CATALOG_H_
