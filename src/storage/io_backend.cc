#include "storage/io_backend.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/metrics.h"
#include "storage/async_io.h"
#include "storage/factory.h"

namespace pbitree {

// ---------------------------------------------------------------------------
// Positional full-transfer loops

namespace io_internal {

Status ReadFullAt(const PReadFn& pread_fn, const char* what, char* buf,
                  size_t n, off_t off) {
  size_t got = 0;
  while (got < n) {
    ssize_t r = pread_fn(buf + got, n - got, off + static_cast<off_t>(got));
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string(what) + ": " + std::strerror(errno));
    }
    if (r == 0) {
      // True end of file: the store has never been extended this far.
      // Only here may the tail read as zeroes — a short read with more
      // bytes behind it must resume, not zero-fill.
      std::memset(buf + got, 0, n - got);
      return Status::OK();
    }
    got += static_cast<size_t>(r);
  }
  return Status::OK();
}

Status WriteFullAt(const PWriteFn& pwrite_fn, const char* what,
                   const char* buf, size_t n, off_t off) {
  size_t put = 0;
  while (put < n) {
    ssize_t w = pwrite_fn(buf + put, n - put, off + static_cast<off_t>(put));
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string(what) + ": " + std::strerror(errno));
    }
    if (w == 0) {
      return Status::IOError(std::string(what) +
                             ": wrote 0 bytes (device full?)");
    }
    put += static_cast<size_t>(w);
  }
  return Status::OK();
}

}  // namespace io_internal

// ---------------------------------------------------------------------------
// FileIoBackend

StatusOr<std::unique_ptr<IoBackend>> FileIoBackend::Open(
    const std::string& path, bool truncate, bool unlink_on_close) {
  // O_CLOEXEC: the daemon forks/execs helpers from connection-handling
  // code; a data-file fd leaking into a child would outlive our unlink
  // discipline and bypass the Sync barrier.
  int flags = O_RDWR | O_CREAT | O_CLOEXEC | (truncate ? O_TRUNC : 0);
  int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) {
    return Status::IOError("open(" + path + "): " + std::strerror(errno));
  }
  return std::unique_ptr<IoBackend>(
      new FileIoBackend(path, fd, unlink_on_close));
}

FileIoBackend::~FileIoBackend() {
  if (fd_ >= 0) {
    ::close(fd_);
    if (!path_.empty() && unlink_on_close_) ::unlink(path_.c_str());
  }
}

Status FileIoBackend::ReadPage(PageId id, char* out) {
  // The loop distinguishes a short read with bytes still behind it
  // (resume — signal-interrupted or mid-extension transfers otherwise
  // return pages with silently zeroed tails) from a true EOF (the
  // never-written-page zero-fill contract).
  return io_internal::ReadFullAt(
      [this](char* buf, size_t n, off_t off) {
        return ::pread(fd_, buf, n, off);
      },
      "pread", out, kPageSize, static_cast<off_t>(id) * kPageSize);
}

Status FileIoBackend::WritePage(PageId id, const char* in) {
  return io_internal::WriteFullAt(
      [this](const char* buf, size_t n, off_t off) {
        return ::pwrite(fd_, buf, n, off);
      },
      "pwrite", in, kPageSize, static_cast<off_t>(id) * kPageSize);
}

Status FileIoBackend::Sync() {
  if (::fsync(fd_) != 0) {
    return Status::IOError(std::string("fsync: ") + std::strerror(errno));
  }
  return Status::OK();
}

StatusOr<PageId> FileIoBackend::SizeInPages() {
  // fstat, not lseek(SEEK_END): stat does not touch the (shared) file
  // offset, so concurrent SizeInPages calls cannot perturb each other
  // or any other fd user, and there is no read-modify race on seek.
  struct stat st;
  if (::fstat(fd_, &st) != 0) {
    return Status::IOError(std::string("fstat: ") + std::strerror(errno));
  }
  return static_cast<PageId>((st.st_size + static_cast<off_t>(kPageSize) - 1) /
                             static_cast<off_t>(kPageSize));
}

// ---------------------------------------------------------------------------
// MemIoBackend

Status MemIoBackend::ReadPage(PageId id, char* out) {
  const size_t off = static_cast<size_t>(id) * kPageSize;
  {
    std::shared_lock<std::shared_mutex> lk(mu_);
    if (mem_.size() >= off + kPageSize) {
      std::memcpy(out, mem_.data() + off, kPageSize);
      return Status::OK();
    }
  }
  // Page allocated but never written: the store has not grown to cover
  // it yet. Grow under the exclusive lock and serve zeroes.
  std::unique_lock<std::shared_mutex> lk(mu_);
  if (mem_.size() < off + kPageSize) mem_.resize(off + kPageSize, 0);
  std::memcpy(out, mem_.data() + off, kPageSize);
  return Status::OK();
}

Status MemIoBackend::WritePage(PageId id, const char* in) {
  const size_t off = static_cast<size_t>(id) * kPageSize;
  {
    std::shared_lock<std::shared_mutex> lk(mu_);
    if (mem_.size() >= off + kPageSize) {
      std::memcpy(mem_.data() + off, in, kPageSize);
      return Status::OK();
    }
  }
  std::unique_lock<std::shared_mutex> lk(mu_);
  if (mem_.size() < off + kPageSize) mem_.resize(off + kPageSize, 0);
  std::memcpy(mem_.data() + off, in, kPageSize);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// FaultSchedule

StatusOr<FaultSchedule> FaultSchedule::Parse(const std::string& spec) {
  FaultSchedule s;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t end = spec.find_first_of(",;", pos);
    if (end == std::string::npos) end = spec.size();
    std::string kv = spec.substr(pos, end - pos);
    pos = end + 1;
    if (kv.empty()) continue;
    size_t eq = kv.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("fault schedule: '" + kv +
                                     "' is not key=value");
    }
    std::string key = kv.substr(0, eq);
    std::string val = kv.substr(eq + 1);
    char* rest = nullptr;
    errno = 0;
    if (key == "read_p" || key == "write_p") {
      double d = std::strtod(val.c_str(), &rest);
      if (errno != 0 || rest == val.c_str() || *rest != '\0' || d < 0.0 ||
          d > 1.0) {
        return Status::InvalidArgument("fault schedule: bad probability '" +
                                       kv + "' (want 0..1)");
      }
      (key == "read_p" ? s.read_p : s.write_p) = d;
      continue;
    }
    unsigned long long u = std::strtoull(val.c_str(), &rest, 10);
    if (errno != 0 || rest == val.c_str() || *rest != '\0') {
      return Status::InvalidArgument("fault schedule: bad value '" + kv + "'");
    }
    if (key == "seed") {
      s.seed = u;
    } else if (key == "read_every") {
      s.read_every = u;
    } else if (key == "write_every") {
      s.write_every = u;
    } else if (key == "transient") {
      s.transient = static_cast<uint32_t>(u);
    } else if (key == "torn_writes") {
      s.torn_writes = u != 0;
    } else if (key == "short_reads") {
      s.short_reads = u != 0;
    } else {
      return Status::InvalidArgument("fault schedule: unknown key '" + key +
                                     "'");
    }
  }
  return s;
}

std::optional<FaultSchedule> FaultSchedule::FromEnv() {
  const char* spec = std::getenv("PBITREE_FAULT_SCHEDULE");
  if (spec == nullptr || spec[0] == '\0') return std::nullopt;
  auto parsed = Parse(spec);
  if (!parsed.ok()) {
    std::fprintf(stderr, "PBITREE_FAULT_SCHEDULE=\"%s\": %s\n", spec,
                 parsed.status().ToString().c_str());
    std::abort();
  }
  return *parsed;
}

std::string FaultSchedule::ToString() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "seed=%llu,read_every=%llu,write_every=%llu,read_p=%g,"
                "write_p=%g,transient=%u,torn_writes=%d,short_reads=%d",
                static_cast<unsigned long long>(seed),
                static_cast<unsigned long long>(read_every),
                static_cast<unsigned long long>(write_every), read_p, write_p,
                transient, torn_writes ? 1 : 0, short_reads ? 1 : 0);
  return buf;
}

// ---------------------------------------------------------------------------
// FaultInjectingBackend

FaultInjectingBackend::FaultInjectingBackend(std::unique_ptr<IoBackend> inner,
                                             FaultSchedule schedule)
    : inner_(std::move(inner)), schedule_(schedule), rng_(schedule.seed) {}

void FaultInjectingBackend::Arm(const FaultSchedule& schedule) {
  std::lock_guard<std::mutex> lk(mu_);
  schedule_ = schedule;
  rng_.Seed(schedule.seed);
  reads_ = KindState{};
  writes_ = KindState{};
}

uint64_t FaultInjectingBackend::faults_injected() const {
  std::lock_guard<std::mutex> lk(mu_);
  return faults_injected_;
}

bool FaultInjectingBackend::TriggerLocked(KindState* ks, uint64_t every,
                                          double p) {
  ++ks->ops;
  if (ks->sticky_failed) return true;
  if (ks->pending_failures > 0) {
    --ks->pending_failures;
    return true;
  }
  bool trigger = (every != 0 && ks->ops % every == 0) ||
                 (p > 0.0 && rng_.Bernoulli(p));
  if (!trigger) return false;
  if (schedule_.transient > 0) {
    ks->pending_failures = schedule_.transient - 1;
  } else {
    ks->sticky_failed = true;
  }
  return true;
}

Status FaultInjectingBackend::ReadPage(PageId id, char* out) {
  bool fault, corrupt;
  {
    std::lock_guard<std::mutex> lk(mu_);
    fault = schedule_.Enabled() &&
            TriggerLocked(&reads_, schedule_.read_every, schedule_.read_p);
    corrupt = fault && schedule_.short_reads;
    if (fault) ++faults_injected_;
  }
  if (fault) obs::Count(obs::Counter::kIoFaultsInjected);
  if (fault && !corrupt) {
    return Status::IOError("injected fault: read of page " +
                           std::to_string(id));
  }
  PBITREE_RETURN_IF_ERROR(inner_->ReadPage(id, out));
  if (corrupt) {
    // Short read: the tail of the page never arrived. The caller's
    // checksum — not this layer — must notice.
    std::memset(out + kPageSize / 2, 0, kPageSize / 2);
  }
  return Status::OK();
}

Status FaultInjectingBackend::WritePage(PageId id, const char* in) {
  bool fault, corrupt;
  {
    std::lock_guard<std::mutex> lk(mu_);
    fault = schedule_.Enabled() &&
            TriggerLocked(&writes_, schedule_.write_every, schedule_.write_p);
    corrupt = fault && schedule_.torn_writes;
    if (fault) ++faults_injected_;
  }
  if (fault) obs::Count(obs::Counter::kIoFaultsInjected);
  if (fault && !corrupt) {
    return Status::IOError("injected fault: write of page " +
                           std::to_string(id));
  }
  if (corrupt) {
    // Torn write: the first half lands, the second half is garbage —
    // and the device reports success. XOR guarantees every torn byte
    // differs from the intended one, so the page checksum cannot
    // accidentally still match.
    char torn[kPageSize];
    std::memcpy(torn, in, kPageSize);
    for (size_t i = kPageSize / 2; i < kPageSize; ++i) {
      torn[i] = static_cast<char>(torn[i] ^ 0xFF);
    }
    return inner_->WritePage(id, torn);
  }
  return inner_->WritePage(id, in);
}

// ---------------------------------------------------------------------------
// Factory

StatusOr<std::unique_ptr<IoBackend>> MakeIoBackend(const std::string& kind,
                                                   const std::string& path) {
  PBITREE_RETURN_IF_ERROR(ValidateIoBackendKind(kind));
  if (kind == "mem") {
    return std::unique_ptr<IoBackend>(new MemIoBackend());
  }
  if (kind == "file") {
    if (path.empty()) {
      return Status::InvalidArgument("file backend requires a path");
    }
    return FileIoBackend::Open(path, /*truncate=*/false,
                               /*unlink_on_close=*/false);
  }
  // "async-<kind>" wraps the inner kind in an AsyncIoBackend submission
  // queue; same persistence semantics as the inner kind.
  if (kind.rfind("async-", 0) == 0) {
    auto inner = MakeIoBackend(kind.substr(6), path);
    if (!inner.ok()) return inner.status();
    return std::unique_ptr<IoBackend>(
        new AsyncIoBackend(std::move(inner).value(), /*workers=*/2));
  }
  // Unreachable: ValidateIoBackendKind vets the vocabulary up front.
  return Status::InvalidArgument("unknown backend '" + kind +
                                 "' (want file|mem|async-file|async-mem)");
}

}  // namespace pbitree
