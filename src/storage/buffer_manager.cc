#include "storage/buffer_manager.h"

#include <cassert>

#include "obs/metrics.h"

namespace pbitree {

BufferManager::BufferManager(DiskManager* disk, size_t pool_pages)
    : disk_(disk) {
  assert(pool_pages >= 3 && "joins need at least 3 buffer pages");
  frames_.reserve(pool_pages);
  for (size_t i = 0; i < pool_pages; ++i) {
    frames_.push_back(std::make_unique<Page>());
  }
  page_table_.reserve(pool_pages * 2);
}

BufferManager::~BufferManager() { FlushAll(); }

Result<size_t> BufferManager::FindVictimLocked() {
  // Classic clock sweep: skip pinned frames, clear reference bits, take
  // the first unreferenced unpinned frame. Two full sweeps guarantee
  // termination when any frame is unpinned. Frames mid-transfer are
  // pinned by the fetching thread, so the pin check covers them too.
  const size_t n = frames_.size();
  for (size_t step = 0; step < 2 * n; ++step) {
    Page* f = frames_[clock_hand_].get();
    size_t idx = clock_hand_;
    clock_hand_ = (clock_hand_ + 1) % n;
    if (f->pin_count_ > 0 || f->io_pending_) continue;
    if (f->referenced_) {
      f->referenced_ = false;
      continue;
    }
    return idx;
  }
  return Status::ResourceExhausted("buffer pool: all frames pinned");
}

PageId BufferManager::DetachFrameLocked(size_t idx) {
  Page* f = frames_[idx].get();
  if (f->page_id_ == kInvalidPageId) return kInvalidPageId;
  page_table_.erase(f->page_id_);
  ++stats_.evictions;
  obs::Count(obs::Counter::kBufEvictions);
  if (!f->is_dirty_) return kInvalidPageId;
  ++stats_.dirty_writes;
  obs::Count(obs::Counter::kBufDirtyWrites);
  return f->page_id_;
}

Result<Page*> BufferManager::FetchPage(PageId page_id) {
  obs::LatencyTimer latch_wait(obs::Latency::kLatchWait);
  std::unique_lock<std::mutex> lk(latch_);
  latch_wait.Finish();
  ++stats_.fetches;
  obs::Count(obs::Counter::kBufFetches);
  for (;;) {
    auto it = page_table_.find(page_id);
    if (it == page_table_.end()) {
      if (writebacks_.count(page_id) == 0) break;
      // The page was just evicted dirty and its newest bytes are still
      // in flight to disk. Reading it back now would return the stale
      // on-disk copy (and race the write on the in-memory backend), so
      // wait for the write-back to land, then re-probe.
      obs::LatencyTimer io_wait(obs::Latency::kIoWait);
      io_cv_.wait(lk);
      io_wait.Finish();
      continue;
    }
    Page* f = frames_[it->second].get();
    if (f->io_pending_) {
      // Another thread is transferring this page; wait for the frame
      // latch to clear, then re-probe (the transfer may have failed
      // and removed the mapping).
      obs::LatencyTimer io_wait(obs::Latency::kIoWait);
      io_cv_.wait(lk);
      io_wait.Finish();
      continue;
    }
    ++stats_.hits;
    obs::Count(obs::Counter::kBufHits);
    ++f->pin_count_;
    f->referenced_ = true;
    return f;
  }
  ++stats_.misses;
  obs::Count(obs::Counter::kBufMisses);
  PBITREE_ASSIGN_OR_RETURN(size_t idx, FindVictimLocked());
  Page* f = frames_[idx].get();
  const PageId write_back = DetachFrameLocked(idx);
  if (write_back != kInvalidPageId) writebacks_.insert(write_back);
  f->page_id_ = page_id;
  f->pin_count_ = 1;
  f->is_dirty_ = false;
  f->referenced_ = true;
  f->io_pending_ = true;
  page_table_[page_id] = idx;
  lk.unlock();

  // The transfer runs outside the pool latch: the frame is reachable
  // only through the new mapping, which io_pending_ blocks, so other
  // threads fetch other pages concurrently. The frame still holds the
  // evicted page's bytes for the write-back, whose id stays in
  // writebacks_ until the write lands.
  Status st;
  if (write_back != kInvalidPageId) {
    st = disk_->WritePage(write_back, f->data_);
  }
  if (st.ok()) st = disk_->ReadPage(page_id, f->data_);

  lk.lock();
  f->io_pending_ = false;
  if (write_back != kInvalidPageId) writebacks_.erase(write_back);
  if (!st.ok()) {
    page_table_.erase(page_id);
    f->Reset();
    io_cv_.notify_all();
    return st;
  }
  io_cv_.notify_all();
  return f;
}

Result<Page*> BufferManager::NewPage() {
  PBITREE_ASSIGN_OR_RETURN(PageId page_id, disk_->AllocatePage());
  std::unique_lock<std::mutex> lk(latch_);
  PBITREE_ASSIGN_OR_RETURN(size_t idx, FindVictimLocked());
  Page* f = frames_[idx].get();
  const PageId write_back = DetachFrameLocked(idx);
  if (write_back != kInvalidPageId) writebacks_.insert(write_back);
  f->page_id_ = page_id;
  f->pin_count_ = 1;
  f->is_dirty_ = false;  // set after the frame is cleaned
  f->referenced_ = true;
  f->io_pending_ = true;
  page_table_[page_id] = idx;
  lk.unlock();

  Status st;
  if (write_back != kInvalidPageId) {
    st = disk_->WritePage(write_back, f->data_);
  }
  std::memset(f->data_, 0, kPageSize);

  lk.lock();
  f->io_pending_ = false;
  if (write_back != kInvalidPageId) writebacks_.erase(write_back);
  if (!st.ok()) {
    page_table_.erase(page_id);
    f->Reset();
    (void)disk_->FreePage(page_id);  // don't leak the fresh id
    io_cv_.notify_all();
    return st;
  }
  f->is_dirty_ = true;  // a new page must reach disk even if untouched
  io_cv_.notify_all();
  return f;
}

Status BufferManager::UnpinPage(PageId page_id, bool dirty) {
  std::lock_guard<std::mutex> lk(latch_);
  auto it = page_table_.find(page_id);
  if (it == page_table_.end()) {
    return Status::NotFound("UnpinPage: page " + std::to_string(page_id) +
                            " not in pool");
  }
  Page* f = frames_[it->second].get();
  if (f->pin_count_ <= 0) {
    return Status::Internal("UnpinPage: page " + std::to_string(page_id) +
                            " not pinned");
  }
  --f->pin_count_;
  if (dirty) f->is_dirty_ = true;
  return Status::OK();
}

Status BufferManager::FlushPage(PageId page_id) {
  std::unique_lock<std::mutex> lk(latch_);
  auto it = page_table_.find(page_id);
  if (it == page_table_.end()) return Status::OK();
  Page* f = frames_[it->second].get();
  while (f->io_pending_) {
    obs::LatencyTimer io_wait(obs::Latency::kIoWait);
    io_cv_.wait(lk);
    io_wait.Finish();
  }
  if (f->page_id_ != page_id) return Status::OK();  // evicted meanwhile
  if (f->is_dirty_) {
    PBITREE_RETURN_IF_ERROR(disk_->WritePage(f->page_id_, f->data_));
    ++stats_.dirty_writes;
    obs::Count(obs::Counter::kBufDirtyWrites);
    f->is_dirty_ = false;
  }
  return Status::OK();
}

Status BufferManager::FlushAll() {
  std::unique_lock<std::mutex> lk(latch_);
  for (auto& frame : frames_) {
    Page* f = frame.get();
    while (f->io_pending_) {
      obs::LatencyTimer io_wait(obs::Latency::kIoWait);
      io_cv_.wait(lk);
      io_wait.Finish();
    }
    if (f->page_id_ != kInvalidPageId && f->is_dirty_) {
      PBITREE_RETURN_IF_ERROR(disk_->WritePage(f->page_id_, f->data_));
      ++stats_.dirty_writes;
      obs::Count(obs::Counter::kBufDirtyWrites);
      f->is_dirty_ = false;
    }
  }
  return Status::OK();
}

Status BufferManager::PurgeAll() {
  PBITREE_RETURN_IF_ERROR(FlushAll());
  std::lock_guard<std::mutex> lk(latch_);
  for (auto& frame : frames_) {
    Page* f = frame.get();
    if (f->page_id_ == kInvalidPageId) continue;
    if (f->pin_count_ > 0) {
      return Status::InvalidArgument("PurgeAll: page " +
                                     std::to_string(f->page_id_) +
                                     " is pinned");
    }
    page_table_.erase(f->page_id_);
    f->Reset();
  }
  return Status::OK();
}

Status BufferManager::DeletePage(PageId page_id) {
  std::unique_lock<std::mutex> lk(latch_);
  for (;;) {
    // Never free a page whose evicted dirty copy is still being
    // written back: a recycled id could then be clobbered by the
    // in-flight write. Wait the write-back out, then re-probe (the
    // page may have been re-fetched meanwhile).
    if (writebacks_.count(page_id) != 0) {
      obs::LatencyTimer io_wait(obs::Latency::kIoWait);
      io_cv_.wait(lk);
      io_wait.Finish();
      continue;
    }
    auto it = page_table_.find(page_id);
    if (it == page_table_.end()) break;
    Page* f = frames_[it->second].get();
    if (f->io_pending_) {
      obs::LatencyTimer io_wait(obs::Latency::kIoWait);
      io_cv_.wait(lk);
      io_wait.Finish();
      continue;
    }
    if (f->pin_count_ > 0) {
      return Status::InvalidArgument("DeletePage: page " +
                                     std::to_string(page_id) + " is pinned");
    }
    page_table_.erase(page_id);
    f->Reset();
    break;
  }
  return disk_->FreePage(page_id);
}

size_t BufferManager::PinnedFrames() const {
  std::lock_guard<std::mutex> lk(latch_);
  size_t n = 0;
  for (const auto& frame : frames_) {
    if (frame->pin_count_ > 0) ++n;
  }
  return n;
}

}  // namespace pbitree
