#include "storage/buffer_manager.h"

#include <cassert>

namespace pbitree {

BufferManager::BufferManager(DiskManager* disk, size_t pool_pages)
    : disk_(disk) {
  assert(pool_pages >= 3 && "joins need at least 3 buffer pages");
  frames_.reserve(pool_pages);
  for (size_t i = 0; i < pool_pages; ++i) {
    frames_.push_back(std::make_unique<Page>());
  }
  page_table_.reserve(pool_pages * 2);
}

BufferManager::~BufferManager() { FlushAll(); }

Result<size_t> BufferManager::FindVictim() {
  // Classic clock sweep: skip pinned frames, clear reference bits, take
  // the first unreferenced unpinned frame. Two full sweeps guarantee
  // termination when any frame is unpinned.
  const size_t n = frames_.size();
  for (size_t step = 0; step < 2 * n; ++step) {
    Page* f = frames_[clock_hand_].get();
    size_t idx = clock_hand_;
    clock_hand_ = (clock_hand_ + 1) % n;
    if (f->pin_count_ > 0) continue;
    if (f->referenced_) {
      f->referenced_ = false;
      continue;
    }
    return idx;
  }
  return Status::ResourceExhausted("buffer pool: all frames pinned");
}

Status BufferManager::EvictFrame(size_t idx) {
  Page* f = frames_[idx].get();
  if (f->page_id_ == kInvalidPageId) return Status::OK();
  if (f->is_dirty_) {
    PBITREE_RETURN_IF_ERROR(disk_->WritePage(f->page_id_, f->data_));
    ++stats_.dirty_writes;
  }
  page_table_.erase(f->page_id_);
  ++stats_.evictions;
  f->Reset();
  return Status::OK();
}

Result<Page*> BufferManager::FetchPage(PageId page_id) {
  ++stats_.fetches;
  auto it = page_table_.find(page_id);
  if (it != page_table_.end()) {
    ++stats_.hits;
    Page* f = frames_[it->second].get();
    ++f->pin_count_;
    f->referenced_ = true;
    return f;
  }
  ++stats_.misses;
  PBITREE_ASSIGN_OR_RETURN(size_t idx, FindVictim());
  PBITREE_RETURN_IF_ERROR(EvictFrame(idx));
  Page* f = frames_[idx].get();
  PBITREE_RETURN_IF_ERROR(disk_->ReadPage(page_id, f->data_));
  f->page_id_ = page_id;
  f->pin_count_ = 1;
  f->is_dirty_ = false;
  f->referenced_ = true;
  page_table_[page_id] = idx;
  return f;
}

Result<Page*> BufferManager::NewPage() {
  PBITREE_ASSIGN_OR_RETURN(PageId page_id, disk_->AllocatePage());
  PBITREE_ASSIGN_OR_RETURN(size_t idx, FindVictim());
  PBITREE_RETURN_IF_ERROR(EvictFrame(idx));
  Page* f = frames_[idx].get();
  f->Reset();
  f->page_id_ = page_id;
  f->pin_count_ = 1;
  f->is_dirty_ = true;  // a new page must reach disk even if untouched
  f->referenced_ = true;
  page_table_[page_id] = idx;
  return f;
}

Status BufferManager::UnpinPage(PageId page_id, bool dirty) {
  auto it = page_table_.find(page_id);
  if (it == page_table_.end()) {
    return Status::NotFound("UnpinPage: page " + std::to_string(page_id) +
                            " not in pool");
  }
  Page* f = frames_[it->second].get();
  if (f->pin_count_ <= 0) {
    return Status::Internal("UnpinPage: page " + std::to_string(page_id) +
                            " not pinned");
  }
  --f->pin_count_;
  if (dirty) f->is_dirty_ = true;
  return Status::OK();
}

Status BufferManager::FlushPage(PageId page_id) {
  auto it = page_table_.find(page_id);
  if (it == page_table_.end()) return Status::OK();
  Page* f = frames_[it->second].get();
  if (f->is_dirty_) {
    PBITREE_RETURN_IF_ERROR(disk_->WritePage(f->page_id_, f->data_));
    ++stats_.dirty_writes;
    f->is_dirty_ = false;
  }
  return Status::OK();
}

Status BufferManager::FlushAll() {
  for (auto& frame : frames_) {
    Page* f = frame.get();
    if (f->page_id_ != kInvalidPageId && f->is_dirty_) {
      PBITREE_RETURN_IF_ERROR(disk_->WritePage(f->page_id_, f->data_));
      ++stats_.dirty_writes;
      f->is_dirty_ = false;
    }
  }
  return Status::OK();
}

Status BufferManager::PurgeAll() {
  PBITREE_RETURN_IF_ERROR(FlushAll());
  for (auto& frame : frames_) {
    Page* f = frame.get();
    if (f->page_id_ == kInvalidPageId) continue;
    if (f->pin_count_ > 0) {
      return Status::InvalidArgument("PurgeAll: page " +
                                     std::to_string(f->page_id_) +
                                     " is pinned");
    }
    page_table_.erase(f->page_id_);
    f->Reset();
  }
  return Status::OK();
}

Status BufferManager::DeletePage(PageId page_id) {
  auto it = page_table_.find(page_id);
  if (it != page_table_.end()) {
    Page* f = frames_[it->second].get();
    if (f->pin_count_ > 0) {
      return Status::InvalidArgument("DeletePage: page " +
                                     std::to_string(page_id) + " is pinned");
    }
    page_table_.erase(it);
    f->Reset();
  }
  return disk_->FreePage(page_id);
}

size_t BufferManager::PinnedFrames() const {
  size_t n = 0;
  for (const auto& frame : frames_) {
    if (frame->pin_count_ > 0) ++n;
  }
  return n;
}

}  // namespace pbitree
