#include "storage/buffer_manager.h"

#include <cassert>
#include <cstring>
#include <vector>

#include "common/env.h"
#include "obs/metrics.h"

namespace pbitree {

namespace {

/// Workers draining the pool's async queue. More than the expected core
/// count on purpose: the jobs block on page transfer (or injected
/// latency), not CPU, so extra workers are extra overlap.
constexpr size_t kIoWorkers = 4;

/// Frames the prefetch path keeps clear of soft reservations, so
/// legitimate pins never have to fall back to reclaiming one.
constexpr size_t kPrefetchHeadroom = 2;

}  // namespace

BufferManager::BufferManager(DiskManager* disk, size_t pool_pages)
    : disk_(disk) {
  assert(pool_pages >= 3 && "joins need at least 3 buffer pages");
  frames_.reserve(pool_pages);
  for (size_t i = 0; i < pool_pages; ++i) {
    frames_.push_back(std::make_unique<Page>());
  }
  page_table_.reserve(pool_pages * 2);
  set_readahead_pages(static_cast<size_t>(
      EnvInt64Checked("PBITREE_READAHEAD_PAGES", 0, 0, 1 << 20)));
}

BufferManager::~BufferManager() {
  DrainAsyncIo();
  FlushAll();
}

void BufferManager::set_readahead_pages(size_t n) {
  // Phase operation: quiesce outstanding jobs before the swap so none
  // observes the pool change mid-flight.
  DrainAsyncIo();
  readahead_pages_ = n;
  if (n == 0) {
    pool_.reset();
  } else if (pool_ == nullptr) {
    pool_ = std::make_unique<IoWorkerPool>(kIoWorkers);
  }
}

void BufferManager::DrainAsyncIo() {
  if (pool_ != nullptr) pool_->Drain();
}

Result<size_t> BufferManager::FindVictimLocked(bool allow_reserved) {
  // Classic clock sweep: skip pinned frames, clear reference bits, take
  // the first unreferenced unpinned frame. Two full sweeps guarantee
  // termination when any frame is unpinned. Frames mid-transfer are
  // held by io_pending_; softly-reserved (prefetched, unconsumed)
  // frames are spared in the first pass and reclaimed only when the
  // caller may take them and nothing else is available.
  const size_t n = frames_.size();
  const int passes = allow_reserved ? 2 : 1;
  for (int pass = 0; pass < passes; ++pass) {
    const bool take_reserved = pass > 0;
    for (size_t step = 0; step < 2 * n; ++step) {
      Page* f = frames_[clock_hand_].get();
      size_t idx = clock_hand_;
      clock_hand_ = (clock_hand_ + 1) % n;
      if (f->pin_count_ > 0 || f->io_pending_) continue;
      if (!take_reserved && f->page_id_ != kInvalidPageId &&
          prefetched_.count(f->page_id_) != 0) {
        continue;
      }
      if (f->referenced_) {
        f->referenced_ = false;
        continue;
      }
      return idx;
    }
  }
  return Status::ResourceExhausted("buffer pool: all frames pinned");
}

Result<size_t> BufferManager::AcquireVictimLocked(
    std::unique_lock<std::mutex>& lk) {
  for (;;) {
    auto victim = FindVictimLocked(/*allow_reserved=*/true);
    if (victim.ok()) return victim;
    bool in_transfer = false;
    for (const auto& frame : frames_) {
      if (frame->io_pending_) {
        in_transfer = true;
        break;
      }
    }
    if (!in_transfer) return victim;  // truly all pinned
    obs::LatencyTimer io_wait(obs::Latency::kIoWait);
    io_cv_.wait(lk);
    io_wait.Finish();
  }
}

PageId BufferManager::DetachFrameLocked(size_t idx) {
  Page* f = frames_[idx].get();
  if (f->page_id_ == kInvalidPageId) return kInvalidPageId;
  if (prefetched_.erase(f->page_id_) != 0) {
    // Emergency reclaim of an unconsumed prefetch. Its deferred read
    // was never counted, so the eventual ordinary fetch re-reads and
    // counts the page — read counts stay exact, only the prefetch work
    // is wasted.
    ++stats_.prefetch_unused;
    obs::Count(obs::Counter::kBufPrefetchUnused);
  }
  page_table_.erase(f->page_id_);
  ++stats_.evictions;
  obs::Count(obs::Counter::kBufEvictions);
  if (!f->is_dirty_) return kInvalidPageId;
  ++stats_.dirty_writes;
  obs::Count(obs::Counter::kBufDirtyWrites);
  return f->page_id_;
}

bool BufferManager::MaybeAsyncWriteBack(IoWorkerPool* pool, PageId write_back,
                                        const char* bytes) {
  if (pool == nullptr) return false;
  // Copy the victim bytes before returning so the caller may overwrite
  // the frame immediately; the job owns the copy.
  auto buf = std::make_shared<std::vector<char>>(bytes, bytes + kPageSize);
  pool->Submit([this, write_back, buf]() -> Status {
    Status ws = disk_->WritePage(write_back, buf->data());
    std::lock_guard<std::mutex> lk(latch_);
    writebacks_.erase(write_back);
    if (!ws.ok()) write_errors_[write_back] = ws;
    io_cv_.notify_all();
    return ws;
  });
  return true;
}

Result<Page*> BufferManager::FetchPage(PageId page_id) {
  obs::LatencyTimer latch_wait(obs::Latency::kLatchWait);
  std::unique_lock<std::mutex> lk(latch_);
  latch_wait.Finish();
  ++stats_.fetches;
  obs::Count(obs::Counter::kBufFetches);
  size_t idx;
  for (;;) {
    auto it = page_table_.find(page_id);
    if (it == page_table_.end()) {
      if (writebacks_.count(page_id) == 0) {
        auto eit = prefetch_errors_.find(page_id);
        if (eit != prefetch_errors_.end()) {
          // A failed prefetch surfaces here, on the consumer — never
          // silently. The read was attempted, so it counts, exactly
          // like a synchronous miss whose ReadPage fails.
          Status st = eit->second;
          prefetch_errors_.erase(eit);
          ++stats_.misses;
          obs::Count(obs::Counter::kBufMisses);
          disk_->CountDeferredRead();
          return st;
        }
        auto victim = AcquireVictimLocked(lk);
        if (!victim.ok()) {
          ++stats_.misses;
          obs::Count(obs::Counter::kBufMisses);
          return victim.status();
        }
        // The wait inside AcquireVictimLocked releases the latch, so
        // the page may have been installed (or started write-back)
        // meanwhile; commit the miss only if it is still absent.
        if (page_table_.count(page_id) != 0 ||
            writebacks_.count(page_id) != 0) {
          continue;
        }
        idx = *victim;
        break;
      }
      // The page was just evicted dirty and its newest bytes are still
      // in flight to disk. Reading it back now would return the stale
      // on-disk copy (and race the write on the in-memory backend), so
      // wait for the write-back to land, then re-probe.
      obs::LatencyTimer io_wait(obs::Latency::kIoWait);
      io_cv_.wait(lk);
      io_wait.Finish();
      continue;
    }
    Page* f = frames_[it->second].get();
    if (f->io_pending_) {
      // Another thread (or a prefetch/write-behind job) is transferring
      // this page; wait for the frame latch to clear, then re-probe
      // (the transfer may have failed and removed the mapping).
      obs::LatencyTimer io_wait(obs::Latency::kIoWait);
      io_cv_.wait(lk);
      io_wait.Finish();
      continue;
    }
    if (prefetched_.erase(page_id) != 0) {
      // Consuming a finished prefetch. Accounting-wise this is the miss
      // it would have been without readahead — the deferred physical
      // read is booked here, to this operation — the consumer just
      // didn't have to wait for the transfer.
      ++stats_.misses;
      obs::Count(obs::Counter::kBufMisses);
      ++stats_.prefetch_hits;
      obs::Count(obs::Counter::kBufPrefetchHits);
      disk_->CountDeferredRead();
      if (f->pin_count_ == 0) ++pinned_count_;
      ++f->pin_count_;
      f->referenced_ = true;
      return f;
    }
    ++stats_.hits;
    obs::Count(obs::Counter::kBufHits);
    if (f->pin_count_ == 0) ++pinned_count_;
    ++f->pin_count_;
    f->referenced_ = true;
    return f;
  }
  ++stats_.misses;
  obs::Count(obs::Counter::kBufMisses);
  Page* f = frames_[idx].get();
  const PageId write_back = DetachFrameLocked(idx);
  if (write_back != kInvalidPageId) writebacks_.insert(write_back);
  IoWorkerPool* pool = pool_.get();
  f->page_id_ = page_id;
  f->pin_count_ = 1;
  ++pinned_count_;
  f->is_dirty_ = false;
  f->referenced_ = true;
  f->io_pending_ = true;
  page_table_[page_id] = idx;
  lk.unlock();

  // The transfer runs outside the pool latch: the frame is reachable
  // only through the new mapping, which io_pending_ blocks, so other
  // threads fetch other pages concurrently. A dirty victim's bytes go
  // to the worker pool when one exists (copied out, so the read below
  // may start at once); otherwise the frame still holds them and the
  // write happens here. Either way the victim's id stays in writebacks_
  // until its write lands.
  Status st;
  bool wb_async = false;
  if (write_back != kInvalidPageId) {
    wb_async = MaybeAsyncWriteBack(pool, write_back, f->data_);
    if (!wb_async) {
      obs::LatencyTimer io_wait(obs::Latency::kIoWait);
      st = disk_->WritePage(write_back, f->data_);
      io_wait.Finish();
    }
  }
  if (st.ok()) {
    obs::LatencyTimer io_wait(obs::Latency::kIoWait);
    st = disk_->ReadPage(page_id, f->data_);
    io_wait.Finish();
  }

  lk.lock();
  f->io_pending_ = false;
  if (write_back != kInvalidPageId && !wb_async) writebacks_.erase(write_back);
  if (!st.ok()) {
    page_table_.erase(page_id);
    --pinned_count_;
    f->Reset();
    io_cv_.notify_all();
    return st;
  }
  io_cv_.notify_all();
  return f;
}

Result<Page*> BufferManager::NewPage() {
  PBITREE_ASSIGN_OR_RETURN(PageId page_id, disk_->AllocatePage());
  std::unique_lock<std::mutex> lk(latch_);
  PBITREE_ASSIGN_OR_RETURN(size_t idx, AcquireVictimLocked(lk));
  Page* f = frames_[idx].get();
  const PageId write_back = DetachFrameLocked(idx);
  if (write_back != kInvalidPageId) writebacks_.insert(write_back);
  IoWorkerPool* pool = pool_.get();
  f->page_id_ = page_id;
  f->pin_count_ = 1;
  ++pinned_count_;
  f->is_dirty_ = false;  // set after the frame is cleaned
  f->referenced_ = true;
  f->io_pending_ = true;
  page_table_[page_id] = idx;
  lk.unlock();

  Status st;
  bool wb_async = false;
  if (write_back != kInvalidPageId) {
    wb_async = MaybeAsyncWriteBack(pool, write_back, f->data_);
    if (!wb_async) {
      obs::LatencyTimer io_wait(obs::Latency::kIoWait);
      st = disk_->WritePage(write_back, f->data_);
      io_wait.Finish();
    }
  }
  std::memset(f->data_, 0, kPageSize);

  lk.lock();
  f->io_pending_ = false;
  if (write_back != kInvalidPageId && !wb_async) writebacks_.erase(write_back);
  if (!st.ok()) {
    page_table_.erase(page_id);
    --pinned_count_;
    f->Reset();
    (void)disk_->FreePage(page_id);  // don't leak the fresh id
    io_cv_.notify_all();
    return st;
  }
  f->is_dirty_ = true;  // a new page must reach disk even if untouched
  io_cv_.notify_all();
  return f;
}

Status BufferManager::UnpinPage(PageId page_id, bool dirty) {
  std::lock_guard<std::mutex> lk(latch_);
  auto it = page_table_.find(page_id);
  if (it == page_table_.end()) {
    return Status::NotFound("UnpinPage: page " + std::to_string(page_id) +
                            " not in pool");
  }
  Page* f = frames_[it->second].get();
  if (f->pin_count_ <= 0) {
    return Status::Internal("UnpinPage: page " + std::to_string(page_id) +
                            " not pinned");
  }
  --f->pin_count_;
  if (f->pin_count_ == 0) --pinned_count_;
  if (dirty) f->is_dirty_ = true;
  return Status::OK();
}

Status BufferManager::FlushPage(PageId page_id) {
  std::unique_lock<std::mutex> lk(latch_);
  auto it = page_table_.find(page_id);
  if (it == page_table_.end()) return Status::OK();
  Page* f = frames_[it->second].get();
  while (f->io_pending_) {
    obs::LatencyTimer io_wait(obs::Latency::kIoWait);
    io_cv_.wait(lk);
    io_wait.Finish();
  }
  if (f->page_id_ != page_id) return Status::OK();  // evicted meanwhile
  if (f->is_dirty_) {
    PBITREE_RETURN_IF_ERROR(disk_->WritePage(f->page_id_, f->data_));
    ++stats_.dirty_writes;
    obs::Count(obs::Counter::kBufDirtyWrites);
    f->is_dirty_ = false;
  }
  return Status::OK();
}

Status BufferManager::FlushPageAsync(PageId page_id) {
  std::lock_guard<std::mutex> lk(latch_);
  IoWorkerPool* pool = pool_.get();
  if (pool == nullptr) return Status::OK();
  auto it = page_table_.find(page_id);
  if (it == page_table_.end()) return Status::OK();
  Page* f = frames_[it->second].get();
  // A pinned page may still be written through its pin and a frame in
  // transfer is already busy; both fall back to the ordinary flush
  // paths (eviction, FlushPage, FlushAll).
  if (f->io_pending_ || f->pin_count_ > 0 || !f->is_dirty_) {
    return Status::OK();
  }
  f->io_pending_ = true;
  ++stats_.write_behinds;
  obs::Count(obs::Counter::kBufWriteBehind);
  ++stats_.dirty_writes;
  obs::Count(obs::Counter::kBufDirtyWrites);
  pool->Submit([this, f, page_id]() -> Status {
    // io_pending_ holds the frame down (no pins, no eviction), so the
    // write reads the frame bytes in place — the draining half of the
    // appender's double buffer while it fills the next page.
    Status ws = disk_->WritePage(page_id, f->data_);
    std::lock_guard<std::mutex> lk2(latch_);
    f->io_pending_ = false;
    if (ws.ok()) {
      f->is_dirty_ = false;
    } else {
      write_errors_[page_id] = ws;
    }
    io_cv_.notify_all();
    return ws;
  });
  return Status::OK();
}

Status BufferManager::FlushAll() {
  std::unique_lock<std::mutex> lk(latch_);
  // Settle asynchronous writes first: write-behind jobs hold
  // io_pending_ (the per-frame wait below covers them), but eviction
  // write-backs already left the pool and are only visible here.
  while (!writebacks_.empty()) {
    obs::LatencyTimer io_wait(obs::Latency::kIoWait);
    io_cv_.wait(lk);
    io_wait.Finish();
  }
  for (auto& frame : frames_) {
    Page* f = frame.get();
    while (f->io_pending_) {
      obs::LatencyTimer io_wait(obs::Latency::kIoWait);
      io_cv_.wait(lk);
      io_wait.Finish();
    }
    if (f->page_id_ != kInvalidPageId && f->is_dirty_) {
      PBITREE_RETURN_IF_ERROR(disk_->WritePage(f->page_id_, f->data_));
      ++stats_.dirty_writes;
      obs::Count(obs::Counter::kBufDirtyWrites);
      f->is_dirty_ = false;
    }
  }
  if (!write_errors_.empty()) {
    // A background write failed earlier; the data never reached disk.
    Status st = write_errors_.begin()->second;
    write_errors_.clear();
    return st;
  }
  return Status::OK();
}

Status BufferManager::PurgeAll() {
  PBITREE_RETURN_IF_ERROR(FlushAll());
  std::lock_guard<std::mutex> lk(latch_);
  for (auto& frame : frames_) {
    Page* f = frame.get();
    if (f->page_id_ == kInvalidPageId) continue;
    if (f->pin_count_ > 0) {
      return Status::InvalidArgument("PurgeAll: page " +
                                     std::to_string(f->page_id_) +
                                     " is pinned");
    }
    if (prefetched_.erase(f->page_id_) != 0) {
      ++stats_.prefetch_unused;
      obs::Count(obs::Counter::kBufPrefetchUnused);
    }
    page_table_.erase(f->page_id_);
    f->Reset();
  }
  // A cold-cache reset also forgets failed prefetches: the re-fetch
  // after the purge should behave like a first read.
  prefetch_errors_.clear();
  return Status::OK();
}

void BufferManager::DiscardAll() {
  std::unique_lock<std::mutex> lk(latch_);
  // Let in-flight transfers land first: their worker jobs hold raw
  // frame pointers, so the frames must not be reset under them. The
  // writes they complete count as "reached the device before the
  // crash" — a subset of writes landing is exactly the scenario this
  // simulates.
  auto quiescent = [&] {
    if (!writebacks_.empty()) return false;
    for (const auto& frame : frames_) {
      if (frame->io_pending_) return false;
    }
    return true;
  };
  while (!quiescent()) io_cv_.wait(lk);
  for (auto& frame : frames_) frame->Reset();
  page_table_.clear();
  prefetched_.clear();
  prefetch_errors_.clear();
  write_errors_.clear();
  pinned_count_ = 0;
  clock_hand_ = 0;
}

PrefetchResult BufferManager::StartPrefetch(PageId page_id) {
  std::unique_lock<std::mutex> lk(latch_);
  IoWorkerPool* pool = pool_.get();
  if (pool == nullptr) return PrefetchResult::kDisabled;
  if (page_table_.count(page_id) != 0 || writebacks_.count(page_id) != 0 ||
      prefetch_errors_.count(page_id) != 0) {
    return PrefetchResult::kAlreadyPresent;
  }
  // Headroom: reservations are soft, but a prefetch that is immediately
  // reclaimed for a pin is pure waste — don't issue it.
  if (pinned_count_ + prefetched_.size() + kPrefetchHeadroom >=
      frames_.size()) {
    return PrefetchResult::kNoFrame;
  }
  auto victim = FindVictimLocked(/*allow_reserved=*/false);
  if (!victim.ok()) return PrefetchResult::kNoFrame;
  size_t idx = *victim;
  Page* f = frames_[idx].get();
  const PageId write_back = DetachFrameLocked(idx);
  if (write_back != kInvalidPageId) writebacks_.insert(write_back);
  f->page_id_ = page_id;
  f->pin_count_ = 0;  // soft reservation, not a pin
  f->is_dirty_ = false;
  f->referenced_ = false;
  f->io_pending_ = true;
  page_table_[page_id] = idx;
  prefetched_.insert(page_id);
  ++stats_.prefetch_issued;
  obs::Count(obs::Counter::kBufPrefetchIssued);
  lk.unlock();
  pool->Submit([this, f, page_id, write_back]() -> Status {
    // Victim write-back and prefetch read share the job: the write must
    // land before the frame bytes are replaced, and both are off the
    // consumer's critical path anyway.
    Status ws;
    if (write_back != kInvalidPageId) {
      ws = disk_->WritePage(write_back, f->data_);
    }
    Status rs;
    if (ws.ok()) rs = disk_->ReadPagePrefetch(page_id, f->data_);
    std::unique_lock<std::mutex> lk2(latch_);
    f->io_pending_ = false;
    if (write_back != kInvalidPageId) {
      writebacks_.erase(write_back);
      if (!ws.ok()) write_errors_[write_back] = ws;
    }
    Status st = ws.ok() ? rs : ws;
    if (!st.ok()) {
      // Latch the failure for the consumer's FetchPage — a failed
      // prefetch must surface there, never silently.
      page_table_.erase(page_id);
      prefetched_.erase(page_id);
      prefetch_errors_[page_id] = st;
      f->Reset();
    }
    io_cv_.notify_all();
    return st;
  });
  return PrefetchResult::kStarted;
}

void BufferManager::CancelPrefetch(PageId page_id) {
  std::unique_lock<std::mutex> lk(latch_);
  for (;;) {
    auto it = page_table_.find(page_id);
    if (it == page_table_.end()) break;         // errored out or reclaimed
    if (prefetched_.count(page_id) == 0) break;  // consumed meanwhile
    Page* f = frames_[it->second].get();
    if (f->io_pending_) {
      // Transfer still in flight; wait it out (it may yet fail and
      // remove the mapping itself).
      obs::LatencyTimer io_wait(obs::Latency::kIoWait);
      io_cv_.wait(lk);
      io_wait.Finish();
      continue;
    }
    // Evict the unconsumed frame: its deferred read was never counted,
    // so the page must not linger as a free hit for a later fetch.
    prefetched_.erase(page_id);
    page_table_.erase(page_id);
    f->Reset();
    ++stats_.prefetch_unused;
    obs::Count(obs::Counter::kBufPrefetchUnused);
    break;
  }
  // Forget a latched error too: with the prefetch abandoned, the next
  // fetch should behave like a first read.
  prefetch_errors_.erase(page_id);
}

Status BufferManager::DeletePage(PageId page_id) {
  std::unique_lock<std::mutex> lk(latch_);
  for (;;) {
    // Never free a page whose evicted dirty copy is still being
    // written back: a recycled id could then be clobbered by the
    // in-flight write. Wait the write-back out, then re-probe (the
    // page may have been re-fetched meanwhile).
    if (writebacks_.count(page_id) != 0) {
      obs::LatencyTimer io_wait(obs::Latency::kIoWait);
      io_cv_.wait(lk);
      io_wait.Finish();
      continue;
    }
    auto it = page_table_.find(page_id);
    if (it == page_table_.end()) break;
    Page* f = frames_[it->second].get();
    if (f->io_pending_) {
      obs::LatencyTimer io_wait(obs::Latency::kIoWait);
      io_cv_.wait(lk);
      io_wait.Finish();
      continue;
    }
    if (f->pin_count_ > 0) {
      return Status::InvalidArgument("DeletePage: page " +
                                     std::to_string(page_id) + " is pinned");
    }
    if (prefetched_.erase(page_id) != 0) {
      ++stats_.prefetch_unused;
      obs::Count(obs::Counter::kBufPrefetchUnused);
    }
    page_table_.erase(page_id);
    f->Reset();
    break;
  }
  // Stale latched errors must not outlive the page: its id may be
  // recycled for unrelated data.
  prefetch_errors_.erase(page_id);
  write_errors_.erase(page_id);
  return disk_->FreePage(page_id);
}

size_t BufferManager::PinnedFrames() const {
  std::lock_guard<std::mutex> lk(latch_);
  size_t n = 0;
  for (const auto& frame : frames_) {
    if (frame->pin_count_ > 0) ++n;
  }
  return n;
}

}  // namespace pbitree
