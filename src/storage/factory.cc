#include "storage/factory.h"

#include <cstdio>
#include <cstdlib>

namespace pbitree {

Status ValidateIoBackendKind(const std::string& kind) {
  std::string base = kind;
  while (base.rfind("async-", 0) == 0) base = base.substr(6);
  if (base == "file" || base == "mem") return Status::OK();
  return Status::InvalidArgument("unknown backend '" + kind +
                                 "' (want file|mem|async-file|async-mem)");
}

const char* IoBackendHelp() {
  return "file|mem|async-file|async-mem";
}

Result<PageCodecKind> ParsePageCodecKind(const std::string& name) {
  if (name == PageCodecName(PageCodecKind::kRaw)) return PageCodecKind::kRaw;
  if (name == PageCodecName(PageCodecKind::kFoRDelta)) {
    return PageCodecKind::kFoRDelta;
  }
  return Status::InvalidArgument("unknown page codec '" + name + "' (want " +
                                 PageCodecHelp() + ")");
}

const char* PageCodecHelp() {
  return "raw|for-delta";
}

PageCodecKind AmbientPageCodec() {
  const char* v = std::getenv("PBITREE_PAGE_CODEC");
  if (v == nullptr || *v == '\0') return PageCodecKind::kRaw;
  Result<PageCodecKind> parsed = ParsePageCodecKind(v);
  if (!parsed.ok()) {
    std::fprintf(stderr, "PBITREE_PAGE_CODEC=%s: %s\n", v,
                 parsed.status().message().c_str());
    std::abort();
  }
  return parsed.value();
}

}  // namespace pbitree
