#include "storage/segment_store.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "storage/element_store.h"

namespace pbitree {

namespace {

bool IsPersistentKind(const std::string& kind) {
  return kind == "file" || kind == "async-file";
}

std::string SegmentPath(const std::string& path, size_t k) {
  return path + ".seg" + std::to_string(k);
}

}  // namespace

StatusOr<std::unique_ptr<SegmentStore>> SegmentStore::Open(
    const Options& opts) {
  auto make = opts.make_backend;
  if (!make) {
    const std::string kind = opts.backend;
    make = [kind](const std::string& path) {
      return MakeIoBackend(kind, path);
    };
  }
  const bool restore_frontier = IsPersistentKind(opts.backend);

  auto store = std::unique_ptr<SegmentStore>(new SegmentStore());
  store->page_codec_ = opts.page_codec;
  PBITREE_ASSIGN_OR_RETURN(auto main_backend, make(opts.path));
  PBITREE_ASSIGN_OR_RETURN(
      DiskManager * main_disk,
      DiskManager::OpenWithBackend(std::move(main_backend),
                                   restore_frontier));
  store->main_.disk.reset(main_disk);
  // The main file may have been written by a mutable store whose last
  // commit only reached its log: replay it (raw disk, before the pool
  // below can cache a stale page). No-op on fresh or log-free files.
  PBITREE_RETURN_IF_ERROR(ElementSetStore::Recover(main_disk));
  store->main_.bm =
      std::make_unique<BufferManager>(main_disk, opts.pool_pages);
  PBITREE_ASSIGN_OR_RETURN(store->main_.catalog,
                           Catalog::Load(store->main_.bm.get()));

  int level = store->main_.catalog.segment_level();
  if (opts.create_level >= 0) {
    if (store->main_.catalog.size() != 0 && level != opts.create_level) {
      return Status::InvalidArgument(
          "database is segmented at level " + std::to_string(level) +
          "; cannot re-open at level " + std::to_string(opts.create_level));
    }
    level = opts.create_level;
    store->main_.catalog.set_segment_level(level);
  }
  if (level < 0 || level > kMaxSegmentLevel) {
    return Status::Corruption("segment level " + std::to_string(level) +
                              " out of range (max " +
                              std::to_string(kMaxSegmentLevel) + ")");
  }
  store->level_ = level;

  if (level > 0) {
    const size_t n = size_t{1} << level;
    const size_t seg_pool =
        std::max(kMinSegmentPoolPages, opts.pool_pages / n);
    store->segments_.resize(n);
    for (size_t k = 0; k < n; ++k) {
      PBITREE_ASSIGN_OR_RETURN(auto backend,
                               make(SegmentPath(opts.path, k)));
      PBITREE_ASSIGN_OR_RETURN(
          DiskManager * disk,
          DiskManager::OpenWithBackend(std::move(backend),
                                       restore_frontier));
      Piece& piece = store->segments_[k];
      piece.disk.reset(disk);
      piece.bm = std::make_unique<BufferManager>(disk, seg_pool);
      PBITREE_ASSIGN_OR_RETURN(piece.catalog, Catalog::Load(piece.bm.get()));
    }
  }
  return store;
}

BufferManager* SegmentStore::segment_bm(size_t k) { return piece(k)->bm.get(); }

Catalog* SegmentStore::segment_catalog(size_t k) { return &piece(k)->catalog; }

Status SegmentStore::StoreSet(const std::string& name, const ElementSet& src,
                              BufferManager* src_bm) {
  if (!src.file.valid()) {
    return Status::InvalidArgument("cannot store an invalid element set");
  }

  if (level_ == 0) {
    // Pre-sharding layout: one source-order copy into the main file.
    PBITREE_ASSIGN_OR_RETURN(
        ElementSetBuilder builder,
        ElementSetBuilder::Create(main_.bm.get(), src.spec, page_codec_));
    HeapFile::Scanner scan(src_bm, src.file);
    for (std::span<const ElementRecord> batch = scan.NextElementBatch();
         !batch.empty(); batch = scan.NextElementBatch()) {
      for (const ElementRecord& rec : batch) {
        PBITREE_RETURN_IF_ERROR(builder.Add(rec));
      }
    }
    PBITREE_RETURN_IF_ERROR(scan.status());
    ElementSet copy = builder.Build();
    copy.sorted_by_start = src.sorted_by_start;
    return main_.catalog.Put(name, copy);
  }

  const int h_cut = SegmentCutHeight(src.spec, level_);
  if (h_cut < 0) {
    return Status::InvalidArgument(
        "segment level " + std::to_string(level_) +
        " exceeds PBiTree height " + std::to_string(src.spec.height));
  }

  const size_t n = num_segments();
  std::vector<std::optional<ElementSetBuilder>> builders(n);
  std::vector<bool> has_foreign(n, false);
  auto builder_for = [&](size_t k) -> Status {
    if (!builders[k].has_value()) {
      PBITREE_ASSIGN_OR_RETURN(
          ElementSetBuilder b,
          ElementSetBuilder::Create(segments_[k].bm.get(), src.spec,
                                    page_codec_));
      builders[k].emplace(std::move(b));
    }
    return Status::OK();
  };

  // One source-order pass: each segment piece keeps the source's
  // relative record order, natives land in their designated segment,
  // above-cut elements replicate into every segment they span.
  HeapFile::Scanner scan(src_bm, src.file);
  for (std::span<const ElementRecord> batch = scan.NextElementBatch();
       !batch.empty(); batch = scan.NextElementBatch()) {
    for (const ElementRecord& rec : batch) {
      SegmentSpan span = SegmentSpanOf(rec.code, h_cut);
      if (span.hi >= n) {
        return Status::InvalidArgument(
            "element code " + std::to_string(rec.code) +
            " routes past the last segment");
      }
      for (uint64_t k = span.lo; k <= span.hi; ++k) {
        PBITREE_RETURN_IF_ERROR(builder_for(k));
        PBITREE_RETURN_IF_ERROR(builders[k]->Add(rec));
        if (k != span.lo) has_foreign[k] = true;
      }
    }
  }
  PBITREE_RETURN_IF_ERROR(scan.status());

  uint64_t total_pages = 0;
  for (size_t k = 0; k < n; ++k) {
    if (!builders[k].has_value()) continue;
    ElementSet piece = builders[k]->Build();
    piece.sorted_by_start = src.sorted_by_start;
    total_pages += piece.num_pages();
    PBITREE_RETURN_IF_ERROR(segments_[k].catalog.Put(
        name, piece,
        has_foreign[k] ? Catalog::kFlagHasReplicas : 0u));
  }

  Catalog::SegmentedSetInfo info;
  info.num_records = src.num_records();
  info.num_pages = total_pages;
  info.tree_height = src.spec.height;
  info.sorted_by_start = src.sorted_by_start;
  info.height_mask = src.height_mask;
  info.min_start = src.min_start;
  info.max_end = src.max_end;
  return main_.catalog.PutMaster(name, info);
}

StatusOr<SegmentedSet> SegmentStore::Load(const std::string& name) {
  SegmentedSet out;
  out.level = level_;

  if (level_ == 0) {
    PBITREE_ASSIGN_OR_RETURN(ElementSet set,
                             main_.catalog.Get(main_.bm.get(), name));
    out.spec = set.spec;
    out.sorted_by_start = set.sorted_by_start;
    out.num_records = set.num_records();
    out.height_mask = set.height_mask;
    out.min_start = set.min_start;
    out.max_end = set.max_end;
    out.segments.push_back({set, main_.bm.get(), false});
    return out;
  }

  PBITREE_ASSIGN_OR_RETURN(Catalog::SegmentedSetInfo info,
                           main_.catalog.GetMaster(name));
  out.spec = PBiTreeSpec{info.tree_height};
  out.sorted_by_start = info.sorted_by_start;
  out.num_records = info.num_records;
  out.height_mask = info.height_mask;
  out.min_start = info.min_start;
  out.max_end = info.max_end;
  out.segments.resize(num_segments());
  for (size_t k = 0; k < num_segments(); ++k) {
    SegmentedSet::Segment& seg = out.segments[k];
    seg.bm = segments_[k].bm.get();
    if (!segments_[k].catalog.Contains(name)) {
      seg.set.spec = out.spec;  // empty piece: no records in this subtree
      continue;
    }
    PBITREE_ASSIGN_OR_RETURN(seg.set,
                             segments_[k].catalog.Get(seg.bm, name));
    PBITREE_ASSIGN_OR_RETURN(uint32_t flags,
                             segments_[k].catalog.EntryFlags(name));
    seg.has_replicas = (flags & Catalog::kFlagHasReplicas) != 0;
  }
  return out;
}

StatusOr<ElementSet> SegmentStore::LoadMerged(const std::string& name,
                                              BufferManager* dst_bm) {
  if (level_ == 0 && dst_bm == main_.bm.get()) {
    return main_.catalog.Get(main_.bm.get(), name);
  }
  PBITREE_ASSIGN_OR_RETURN(SegmentedSet seg, Load(name));
  const int h_cut = seg.cut_height();
  PBITREE_ASSIGN_OR_RETURN(ElementSetBuilder builder,
                           ElementSetBuilder::Create(dst_bm, seg.spec));
  for (size_t k = 0; k < seg.segments.size(); ++k) {
    const SegmentedSet::Segment& piece = seg.segments[k];
    if (!piece.set.file.valid()) continue;
    HeapFile::Scanner scan(piece.bm, piece.set.file);
    for (std::span<const ElementRecord> batch = scan.NextElementBatch();
         !batch.empty(); batch = scan.NextElementBatch()) {
      for (const ElementRecord& rec : batch) {
        if (piece.has_replicas && HeightOf(rec.code) > h_cut &&
            DesignatedSegment(rec.code, h_cut) != k) {
          continue;  // replica: owned by its designated segment
        }
        PBITREE_RETURN_IF_ERROR(builder.Add(rec));
      }
    }
    PBITREE_RETURN_IF_ERROR(scan.status());
  }
  ElementSet out = builder.Build();
  out.sorted_by_start = seg.sorted_by_start;
  if (out.num_records() != seg.num_records) {
    return Status::Corruption(
        "segmented set '" + name + "' merged to " +
        std::to_string(out.num_records()) + " records, master entry says " +
        std::to_string(seg.num_records));
  }
  return out;
}

Status SegmentStore::SaveCatalogs() {
  for (size_t k = 0; k < segments_.size(); ++k) {
    PBITREE_RETURN_IF_ERROR(segments_[k].catalog.Save(segments_[k].bm.get()));
  }
  return main_.catalog.Save(main_.bm.get());
}

Status SegmentStore::FlushAndSync() {
  for (size_t k = 0; k < segments_.size(); ++k) {
    PBITREE_RETURN_IF_ERROR(segments_[k].bm->FlushAll());
    PBITREE_RETURN_IF_ERROR(segments_[k].disk->Sync());
  }
  PBITREE_RETURN_IF_ERROR(main_.bm->FlushAll());
  return main_.disk->Sync();
}

namespace {

Status SegmentedMutationUnimplemented(const std::string& name,
                                      const char* what) {
  return Status::Unimplemented(
      std::string("cannot ") + what + " '" + name +
      "' in a segmented store: live sharded mutation is not implemented "
      "(mutate an unsegmented database via ElementSetStore, or re-shard "
      "offline with StoreSet)");
}

}  // namespace

Status SegmentStore::InsertRecord(const std::string& name,
                                  const ElementRecord& rec) {
  (void)rec;
  return SegmentedMutationUnimplemented(name, "insert into set");
}

Status SegmentStore::DeleteRecord(const std::string& name, Code code) {
  (void)code;
  return SegmentedMutationUnimplemented(name, "delete from set");
}

}  // namespace pbitree
