#include "storage/catalog.h"

#include <cstring>

#include "common/crc32c.h"
#include "obs/metrics.h"

namespace pbitree {

namespace {

// Where the entry array starts: byte 24 in version-1 files, byte 48
// (after epoch/log/CRC) in version-2 files. 48 + 42*96 = 4080 <= 4096.
constexpr size_t kHeaderBytesV1 = 24;
constexpr size_t kHeaderBytesV2 = 48;
constexpr size_t kEntryBytes = 96;

template <typename T>
void PutAt(char* base, size_t off, T v) {
  std::memcpy(base + off, &v, sizeof(T));
}
template <typename T>
T GetAt(const char* base, size_t off) {
  T v;
  std::memcpy(&v, base + off, sizeof(T));
  return v;
}

}  // namespace

bool Catalog::HeaderCrcValid(const char* page) {
  if (GetAt<uint64_t>(page, 0) != kMagic) return false;
  if (GetAt<uint32_t>(page, kVersionOffset) < 2) return false;
  char copy[kPageSize];
  std::memcpy(copy, page, kPageSize);
  PutAt<uint32_t>(copy, kCrcOffset, 0);
  return Crc32c(copy, kPageSize) == GetAt<uint32_t>(page, kCrcOffset);
}

StatusOr<Catalog> Catalog::Load(BufferManager* bm) {
  // Counted so a serving process can prove it loads the catalog once
  // and answers every query from the warm copy (see serve/server.h).
  obs::Count(obs::Counter::kCatalogLoads);
  Catalog cat;
  if (bm->disk()->frontier() == 0) return cat;  // nothing on disk yet
  PBITREE_ASSIGN_OR_RETURN(Page * p, bm->FetchPage(0));
  const char* data = p->data();
  if (GetAt<uint64_t>(data, 0) != kMagic) {
    PBITREE_RETURN_IF_ERROR(bm->UnpinPage(0, false));
    return cat;  // fresh or foreign database: empty catalog
  }
  uint32_t version = GetAt<uint32_t>(data, kVersionOffset);
  uint32_t count = GetAt<uint32_t>(data, 12);
  uint32_t frontier = GetAt<uint32_t>(data, 16);
  // Offset 20 was zero padding before code-space sharding, so every
  // pre-sharding database reads back as segment level 0 (unsegmented).
  cat.segment_level_ = GetAt<uint32_t>(data, 20);
  size_t header_bytes = kHeaderBytesV1;
  if (version >= 2) {
    header_bytes = kHeaderBytesV2;
    // A mutable database recovers torn header writes from its commit
    // log before Load runs (ElementSetStore::Recover); a CRC mismatch
    // here means there was no log to replay — refuse to guess.
    if (!HeaderCrcValid(data)) {
      PBITREE_RETURN_IF_ERROR(bm->UnpinPage(0, false));
      return Status::Corruption("catalog header checksum mismatch");
    }
    cat.epoch_ = GetAt<uint64_t>(data, kEpochOffset);
    cat.log_first_page_ = GetAt<PageId>(data, kLogFirstOffset);
    cat.log_page_count_ = GetAt<uint32_t>(data, kLogCountOffset);
  }
  bm->disk()->SetFrontier(frontier);
  if (count > kMaxEntries) {
    PBITREE_RETURN_IF_ERROR(bm->UnpinPage(0, false));
    return Status::Corruption("catalog entry count out of range");
  }
  for (uint32_t i = 0; i < count; ++i) {
    const char* at = data + header_bytes + i * kEntryBytes;
    char name_buf[kMaxNameLen + 1];
    std::memcpy(name_buf, at, kMaxNameLen + 1);
    name_buf[kMaxNameLen] = '\0';
    Entry e;
    e.first_page = GetAt<PageId>(at, 32);
    e.num_records = GetAt<uint64_t>(at, 40);
    e.num_pages = GetAt<uint64_t>(at, 48);
    e.tree_height = GetAt<int32_t>(at, 56);
    e.flags = GetAt<uint32_t>(at, 60);
    e.height_mask = GetAt<uint64_t>(at, 64);
    e.min_start = GetAt<uint64_t>(at, 72);
    e.max_end = GetAt<uint64_t>(at, 80);
    cat.entries_.emplace(name_buf, e);
  }
  PBITREE_RETURN_IF_ERROR(bm->UnpinPage(0, false));
  return cat;
}

void Catalog::RenderHeader(char* page, PageId frontier) const {
  std::memset(page, 0, kPageSize);
  PutAt<uint64_t>(page, 0, kMagic);
  PutAt<uint32_t>(page, kVersionOffset, 2);
  PutAt<uint32_t>(page, 12, static_cast<uint32_t>(entries_.size()));
  PutAt<uint32_t>(page, 16, frontier);
  PutAt<uint32_t>(page, 20, segment_level_);
  PutAt<uint64_t>(page, kEpochOffset, epoch_);
  PutAt<PageId>(page, kLogFirstOffset, log_first_page_);
  PutAt<uint32_t>(page, kLogCountOffset, log_page_count_);
  size_t i = 0;
  for (const auto& [name, e] : entries_) {
    char* at = page + kHeaderBytesV2 + i * kEntryBytes;
    std::memcpy(at, name.c_str(), name.size());
    PutAt<PageId>(at, 32, e.first_page);
    PutAt<uint64_t>(at, 40, e.num_records);
    PutAt<uint64_t>(at, 48, e.num_pages);
    PutAt<int32_t>(at, 56, e.tree_height);
    PutAt<uint32_t>(at, 60, e.flags);
    PutAt<uint64_t>(at, 64, e.height_mask);
    PutAt<uint64_t>(at, 72, e.min_start);
    PutAt<uint64_t>(at, 80, e.max_end);
    ++i;
  }
  // CRC last, over the page with the CRC field itself zeroed.
  PutAt<uint32_t>(page, kCrcOffset, Crc32c(page, kPageSize));
}

Status Catalog::Save(BufferManager* bm) {
  // Flush data pages first so the catalog never points at unwritten
  // pages; the header goes through the pool so later Loads in the same
  // process see it.
  PBITREE_RETURN_IF_ERROR(bm->FlushAll());
  char data[kPageSize];
  RenderHeader(data, bm->disk()->frontier());
  PBITREE_ASSIGN_OR_RETURN(Page * p, bm->FetchPage(0));
  std::memcpy(p->data(), data, kPageSize);
  PBITREE_RETURN_IF_ERROR(bm->UnpinPage(0, /*dirty=*/true));
  PBITREE_RETURN_IF_ERROR(bm->FlushPage(0));
  // Durability barrier: data pages and the header that points at them
  // must both survive a crash from here on.
  return bm->disk()->Sync();
}

Status Catalog::Put(const std::string& name, const ElementSet& set,
                    uint32_t extra_flags) {
  if (name.empty() || name.size() > kMaxNameLen) {
    return Status::InvalidArgument("catalog name must be 1..31 bytes");
  }
  if (!set.file.valid()) {
    return Status::InvalidArgument("cannot catalog an invalid element set");
  }
  if (entries_.count(name) == 0 && entries_.size() >= kMaxEntries) {
    return Status::ResourceExhausted("catalog full (42 entries)");
  }
  Entry e;
  e.first_page = set.file.first_page();
  e.num_records = set.num_records();
  e.num_pages = set.num_pages();
  e.tree_height = set.spec.height;
  // Sortedness and codec are derived from the set itself — extra_flags
  // cannot override them (or mark the entry segmented; PutMaster does).
  e.flags =
      (set.sorted_by_start ? kFlagSorted : 0u) |
      (set.file.codec() == PageCodecKind::kFoRDelta ? kFlagCodecFoRDelta
                                                    : 0u) |
      (extra_flags & ~kFlagSorted & ~kFlagSegmented & ~kFlagCodecFoRDelta);
  e.height_mask = set.height_mask;
  e.min_start = set.min_start;
  e.max_end = set.max_end;
  entries_[name] = e;
  return Status::OK();
}

StatusOr<ElementSet> Catalog::Get(BufferManager* bm,
                                const std::string& name) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("no element set named '" + name + "'");
  }
  const Entry& e = it->second;
  if ((e.flags & kFlagSegmented) != 0) {
    return Status::InvalidArgument(
        "element set '" + name +
        "' is segmented; open it through a SegmentStore");
  }
  const PageCodecKind codec = (e.flags & kFlagCodecFoRDelta) != 0
                                  ? PageCodecKind::kFoRDelta
                                  : PageCodecKind::kRaw;
  PBITREE_ASSIGN_OR_RETURN(HeapFile file,
                           HeapFile::Attach(bm, e.first_page, codec));
  if (file.num_records() != e.num_records) {
    return Status::Corruption("catalog entry '" + name +
                              "' does not match the on-disk file");
  }
  ElementSet set;
  set.file = file;
  set.spec = PBiTreeSpec{e.tree_height};
  set.sorted_by_start = (e.flags & 1u) != 0;
  set.height_mask = e.height_mask;
  set.min_start = e.min_start;
  set.max_end = e.max_end;
  return set;
}

StatusOr<uint32_t> Catalog::EntryFlags(const std::string& name) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("no element set named '" + name + "'");
  }
  return it->second.flags;
}

Status Catalog::PutMaster(const std::string& name,
                          const SegmentedSetInfo& info) {
  if (name.empty() || name.size() > kMaxNameLen) {
    return Status::InvalidArgument("catalog name must be 1..31 bytes");
  }
  if (entries_.count(name) == 0 && entries_.size() >= kMaxEntries) {
    return Status::ResourceExhausted("catalog full (42 entries)");
  }
  Entry e;
  e.first_page = kInvalidPageId;  // segment files own the pages
  e.num_records = info.num_records;
  e.num_pages = info.num_pages;
  e.tree_height = info.tree_height;
  e.flags = kFlagSegmented | (info.sorted_by_start ? kFlagSorted : 0u);
  e.height_mask = info.height_mask;
  e.min_start = info.min_start;
  e.max_end = info.max_end;
  entries_[name] = e;
  return Status::OK();
}

StatusOr<Catalog::SegmentedSetInfo> Catalog::GetMaster(
    const std::string& name) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("no element set named '" + name + "'");
  }
  const Entry& e = it->second;
  if ((e.flags & kFlagSegmented) == 0) {
    return Status::InvalidArgument("element set '" + name +
                                   "' is not segmented");
  }
  SegmentedSetInfo info;
  info.num_records = e.num_records;
  info.num_pages = e.num_pages;
  info.tree_height = e.tree_height;
  info.sorted_by_start = (e.flags & kFlagSorted) != 0;
  info.height_mask = e.height_mask;
  info.min_start = e.min_start;
  info.max_end = e.max_end;
  return info;
}

bool Catalog::IsSegmented(const std::string& name) const {
  auto it = entries_.find(name);
  return it != entries_.end() &&
         (it->second.flags & kFlagSegmented) != 0;
}

Status Catalog::Remove(const std::string& name) {
  if (entries_.erase(name) == 0) {
    return Status::NotFound("no element set named '" + name + "'");
  }
  return Status::OK();
}

std::vector<std::string> Catalog::Names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, e] : entries_) out.push_back(name);
  return out;
}

}  // namespace pbitree
