#include "xml/region_encoder.h"

namespace pbitree {

std::vector<Region> EncodeRegions(const DataTree& tree) {
  std::vector<Region> regions(tree.size());
  if (tree.empty()) return regions;

  // Iterative DFS assigning Start preorder / End postorder from one
  // monotone counter.
  uint64_t counter = 0;
  struct Frame {
    NodeId id;
    size_t next_child;
  };
  std::vector<Frame> stack;
  stack.push_back({tree.root(), 0});
  regions[tree.root()].start = ++counter;
  while (!stack.empty()) {
    Frame& f = stack.back();
    const auto& node = tree.node(f.id);
    if (f.next_child < node.children.size()) {
      NodeId c = node.children[f.next_child++];
      regions[c].start = ++counter;
      stack.push_back({c, 0});
    } else {
      regions[f.id].end = ++counter;
      stack.pop_back();
    }
  }
  return regions;
}

}  // namespace pbitree
