#include "xml/data_tree.h"

#include <cassert>

namespace pbitree {

NodeId DataTree::CreateRoot(std::string_view tag) {
  assert(nodes_.empty() && "CreateRoot must be the first node");
  Node n;
  n.tag = InternTag(tag);
  nodes_.push_back(std::move(n));
  return 0;
}

NodeId DataTree::AddChild(NodeId parent, std::string_view tag) {
  assert(parent >= 0 && static_cast<size_t>(parent) < nodes_.size());
  Node n;
  n.tag = InternTag(tag);
  n.parent = parent;
  NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(std::move(n));
  nodes_[parent].children.push_back(id);
  return id;
}

void DataTree::AppendText(NodeId node, std::string_view text) {
  nodes_[node].text.append(text);
}

TagId DataTree::InternTag(std::string_view name) {
  auto it = tag_ids_.find(std::string(name));
  if (it != tag_ids_.end()) return it->second;
  TagId id = static_cast<TagId>(tag_names_.size());
  tag_names_.emplace_back(name);
  tag_ids_.emplace(std::string(name), id);
  return id;
}

bool DataTree::FindTag(std::string_view name, TagId* out) const {
  auto it = tag_ids_.find(std::string(name));
  if (it == tag_ids_.end()) return false;
  *out = it->second;
  return true;
}

std::vector<NodeId> DataTree::NodesWithTag(TagId tag) const {
  std::vector<NodeId> out;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].tag == tag) out.push_back(static_cast<NodeId>(i));
  }
  return out;
}

int DataTree::Depth(NodeId id) const {
  int d = 0;
  for (NodeId p = nodes_[id].parent; p != kInvalidNodeId; p = nodes_[p].parent) {
    ++d;
  }
  return d;
}

bool DataTree::IsAncestorNode(NodeId anc, NodeId desc) const {
  for (NodeId p = nodes_[desc].parent; p != kInvalidNodeId; p = nodes_[p].parent) {
    if (p == anc) return true;
  }
  return false;
}

size_t DataTree::MaxFanout() const {
  size_t m = 0;
  for (const Node& n : nodes_) m = std::max(m, n.children.size());
  return m;
}

int DataTree::MaxDepth() const {
  int m = 0;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    m = std::max(m, Depth(static_cast<NodeId>(i)));
  }
  return m;
}

}  // namespace pbitree
