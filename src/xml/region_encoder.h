#ifndef PBITREE_XML_REGION_ENCODER_H_
#define PBITREE_XML_REGION_ENCODER_H_

#include <vector>

#include "pbitree/code.h"
#include "xml/data_tree.h"

namespace pbitree {

/// \brief The classic document-order region coding of Zhang et al.
/// [SIGMOD'01] — the baseline scheme PBiTree coding is compared against
/// (Section 2.3.1 and Section 5 of the paper).
///
/// Each element receives (Start, End) from a single depth-first pass:
/// Start when the element opens, End when it closes. Containment is
/// a.Start < d.Start && d.End < a.End.
///
/// Used by the coding-scheme comparison tests: PBiTree-derived regions
/// (Lemma 3) must induce exactly the same ancestor-descendant relation
/// as these document-offset regions.
std::vector<Region> EncodeRegions(const DataTree& tree);

}  // namespace pbitree

#endif  // PBITREE_XML_REGION_ENCODER_H_
