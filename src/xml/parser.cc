#include "xml/parser.h"

#include <cctype>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace pbitree {

namespace {

/// Cursor over the input with offset-annotated error helpers.
class Cursor {
 public:
  explicit Cursor(std::string_view in) : in_(in) {}

  bool AtEnd() const { return pos_ >= in_.size(); }
  char Peek() const { return in_[pos_]; }
  char Get() { return in_[pos_++]; }
  size_t pos() const { return pos_; }

  bool StartsWith(std::string_view s) const {
    return in_.compare(pos_, s.size(), s) == 0;
  }
  void Advance(size_t n) { pos_ += n; }

  /// Skips until after `terminator`; false if it never occurs.
  bool SkipPast(std::string_view terminator) {
    size_t at = in_.find(terminator, pos_);
    if (at == std::string_view::npos) return false;
    pos_ = at + terminator.size();
    return true;
  }

  /// Substring [pos, occurrence of terminator); cursor moves past the
  /// terminator. Returns false if the terminator never occurs.
  bool TakeUntil(std::string_view terminator, std::string_view* out) {
    size_t at = in_.find(terminator, pos_);
    if (at == std::string_view::npos) return false;
    *out = in_.substr(pos_, at - pos_);
    pos_ = at + terminator.size();
    return true;
  }

  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) ++pos_;
  }

  Status Error(const std::string& msg) const {
    return Status::Corruption("XML parse error at byte " +
                              std::to_string(pos_) + ": " + msg);
  }

 private:
  std::string_view in_;
  size_t pos_ = 0;
};

bool IsNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}
bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':' ||
         c == '-' || c == '.';
}

/// Decodes the predefined entities and numeric character references in
/// `raw` (bytes > 0x7F from numeric refs are emitted as single bytes).
std::string DecodeEntities(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (size_t i = 0; i < raw.size();) {
    if (raw[i] != '&') {
      out += raw[i++];
      continue;
    }
    size_t semi = raw.find(';', i);
    if (semi == std::string_view::npos || semi - i > 12) {
      out += raw[i++];  // stray ampersand: keep literally
      continue;
    }
    std::string_view ent = raw.substr(i + 1, semi - i - 1);
    if (ent == "lt") {
      out += '<';
    } else if (ent == "gt") {
      out += '>';
    } else if (ent == "amp") {
      out += '&';
    } else if (ent == "quot") {
      out += '"';
    } else if (ent == "apos") {
      out += '\'';
    } else if (!ent.empty() && ent[0] == '#') {
      long cp = 0;
      if (ent.size() > 1 && (ent[1] == 'x' || ent[1] == 'X')) {
        cp = std::strtol(std::string(ent.substr(2)).c_str(), nullptr, 16);
      } else {
        cp = std::strtol(std::string(ent.substr(1)).c_str(), nullptr, 10);
      }
      if (cp > 0 && cp < 256) out += static_cast<char>(cp);
    } else {
      out.append("&").append(ent).append(";");  // unknown entity: literal
    }
    i = semi + 1;
  }
  return out;
}

struct Parser {
  Cursor cur;
  DataTree* tree;
  const ParseOptions& opts;
  std::vector<NodeId> open;  // element stack; empty before the root

  Parser(std::string_view in, DataTree* t, const ParseOptions& o)
      : cur(in), tree(t), opts(o) {}

  Status ParseMarkup(bool* saw_root) {
    if (cur.StartsWith("<!--")) {
      cur.Advance(4);
      if (!cur.SkipPast("-->")) return cur.Error("unterminated comment");
      return Status::OK();
    }
    if (cur.StartsWith("<![CDATA[")) {
      cur.Advance(9);
      std::string_view data;
      if (!cur.TakeUntil("]]>", &data)) return cur.Error("unterminated CDATA");
      if (!open.empty() && opts.keep_text) tree->AppendText(open.back(), data);
      return Status::OK();
    }
    if (cur.StartsWith("<?")) {
      cur.Advance(2);
      if (!cur.SkipPast("?>")) return cur.Error("unterminated PI");
      return Status::OK();
    }
    if (cur.StartsWith("<!DOCTYPE") || cur.StartsWith("<!doctype")) {
      // Skip to the matching '>' (internal subsets with nested brackets).
      cur.Advance(9);
      int depth = 1;
      while (!cur.AtEnd() && depth > 0) {
        char c = cur.Get();
        if (c == '<') ++depth;
        if (c == '>') --depth;
      }
      if (depth != 0) return cur.Error("unterminated DOCTYPE");
      return Status::OK();
    }
    if (cur.StartsWith("</")) {
      cur.Advance(2);
      std::string name;
      PBITREE_RETURN_IF_ERROR(ParseName(&name));
      cur.SkipWhitespace();
      if (cur.AtEnd() || cur.Get() != '>') {
        return cur.Error("malformed end tag </" + name);
      }
      if (open.empty()) return cur.Error("end tag </" + name + "> with no open element");
      const std::string& expect = tree->tag_name(tree->node(open.back()).tag);
      if (expect != name) {
        return cur.Error("mismatched end tag </" + name + ">, expected </" +
                         expect + ">");
      }
      open.pop_back();
      return Status::OK();
    }
    // Start tag.
    cur.Advance(1);
    if (cur.AtEnd() || !IsNameStart(cur.Peek())) {
      return cur.Error("expected element name after '<'");
    }
    std::string name;
    PBITREE_RETURN_IF_ERROR(ParseName(&name));

    NodeId id;
    if (open.empty()) {
      if (*saw_root) return cur.Error("multiple root elements");
      *saw_root = true;
      id = tree->CreateRoot(name);
    } else {
      id = tree->AddChild(open.back(), name);
    }

    // Attributes.
    while (true) {
      cur.SkipWhitespace();
      if (cur.AtEnd()) return cur.Error("unterminated start tag <" + name);
      char c = cur.Peek();
      if (c == '>') {
        cur.Advance(1);
        open.push_back(id);
        return Status::OK();
      }
      if (c == '/') {
        cur.Advance(1);
        if (cur.AtEnd() || cur.Get() != '>') {
          return cur.Error("malformed empty-element tag");
        }
        return Status::OK();  // self-closing: never opened
      }
      if (!IsNameStart(c)) return cur.Error("unexpected character in tag");
      std::string attr;
      PBITREE_RETURN_IF_ERROR(ParseName(&attr));
      cur.SkipWhitespace();
      if (cur.AtEnd() || cur.Get() != '=') {
        return cur.Error("attribute '" + attr + "' missing '='");
      }
      cur.SkipWhitespace();
      if (cur.AtEnd()) return cur.Error("attribute '" + attr + "' missing value");
      char quote = cur.Get();
      if (quote != '"' && quote != '\'') {
        return cur.Error("attribute value must be quoted");
      }
      std::string_view value;
      if (!cur.TakeUntil(std::string_view(&quote, 1), &value)) {
        return cur.Error("unterminated attribute value");
      }
      if (opts.attributes_as_nodes) {
        NodeId a = tree->AddChild(id, "@" + attr);
        if (opts.keep_text) tree->AppendText(a, DecodeEntities(value));
      }
    }
  }

  Status ParseName(std::string* out) {
    out->clear();
    while (!cur.AtEnd() && IsNameChar(cur.Peek())) out->push_back(cur.Get());
    if (out->empty()) return cur.Error("expected name");
    return Status::OK();
  }
};

}  // namespace

Status ParseXml(std::string_view input, DataTree* tree,
                const ParseOptions& options) {
  Parser p(input, tree, options);
  bool saw_root = false;
  while (!p.cur.AtEnd()) {
    if (p.cur.Peek() == '<') {
      PBITREE_RETURN_IF_ERROR(p.ParseMarkup(&saw_root));
    } else {
      size_t begin = p.cur.pos();
      while (!p.cur.AtEnd() && p.cur.Peek() != '<') p.cur.Get();
      if (!p.open.empty() && options.keep_text) {
        std::string_view raw = input.substr(begin, p.cur.pos() - begin);
        // Pure-whitespace runs between elements are layout, not data.
        bool all_ws = true;
        for (char c : raw) {
          if (!std::isspace(static_cast<unsigned char>(c))) {
            all_ws = false;
            break;
          }
        }
        if (!all_ws) tree->AppendText(p.open.back(), DecodeEntities(raw));
      }
    }
  }
  if (!saw_root) return Status::Corruption("XML parse error: no root element");
  if (!p.open.empty()) {
    return Status::Corruption(
        "XML parse error: unclosed element <" +
        tree->tag_name(tree->node(p.open.back()).tag) + ">");
  }
  return Status::OK();
}

Status ParseXmlFile(const std::string& path, DataTree* tree,
                    const ParseOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  std::string content = ss.str();
  return ParseXml(content, tree, options);
}

}  // namespace pbitree
