#ifndef PBITREE_XML_PARSER_H_
#define PBITREE_XML_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "xml/data_tree.h"

namespace pbitree {

/// \brief Options for the XML parser.
struct ParseOptions {
  /// Attributes become child nodes tagged "@name" holding the value as
  /// text — the DOM-style "attributes are nodes" view the paper's tree
  /// model (Figure 1) uses. When false, attributes are skipped.
  bool attributes_as_nodes = true;

  /// Whether to retain character data in the tree (element structure is
  /// all the joins need; dropping text halves memory for big documents).
  bool keep_text = true;
};

/// \brief Parses a (non-validating, namespace-oblivious) XML document
/// into a DataTree.
///
/// Supported: elements, attributes, character data, CDATA sections,
/// comments, processing instructions, DOCTYPE (skipped), the five
/// predefined entities and numeric character references. Exactly one
/// root element is required. Errors are reported with byte offsets.
Status ParseXml(std::string_view input, DataTree* tree,
                const ParseOptions& options = {});

/// Reads `path` and parses it with ParseXml.
Status ParseXmlFile(const std::string& path, DataTree* tree,
                    const ParseOptions& options = {});

}  // namespace pbitree

#endif  // PBITREE_XML_PARSER_H_
