#ifndef PBITREE_XML_SERIALIZER_H_
#define PBITREE_XML_SERIALIZER_H_

#include <string>

#include "common/status.h"
#include "xml/data_tree.h"

namespace pbitree {

/// \brief Options for SerializeXml.
struct SerializeOptions {
  /// Pretty-print with two-space indentation; otherwise compact output.
  bool indent = false;
};

/// \brief Serializes a DataTree back to XML text.
///
/// Nodes tagged "@name" are emitted as attributes of their parent.
/// Special characters in text are escaped; round-tripping a document
/// through ParseXml + SerializeXml is structure-preserving (the
/// round-trip tests rely on this).
std::string SerializeXml(const DataTree& tree, const SerializeOptions& options = {});

/// Writes SerializeXml output to a file.
Status WriteXmlFile(const std::string& path, const DataTree& tree,
                    const SerializeOptions& options = {});

}  // namespace pbitree

#endif  // PBITREE_XML_SERIALIZER_H_
