#ifndef PBITREE_XML_DATA_TREE_H_
#define PBITREE_XML_DATA_TREE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "pbitree/code.h"

namespace pbitree {

/// Index of a node within a DataTree. Node 0 is always the root.
using NodeId = int32_t;
inline constexpr NodeId kInvalidNodeId = -1;

/// Interned element-name identifier.
using TagId = uint32_t;

/// \brief In-memory model of a tree-structured document (Figure 1(b) of
/// the paper): elements with interned tag names, optional text payload,
/// parent/child links, and (after binarization) a PBiTree code.
///
/// The tree is append-only: nodes are added under an existing parent and
/// never removed, which matches how the parser and the data generators
/// build documents.
class DataTree {
 public:
  struct Node {
    TagId tag = 0;
    NodeId parent = kInvalidNodeId;
    std::vector<NodeId> children;
    std::string text;          // concatenated character data, may be empty
    Code code = kInvalidCode;  // assigned by BinarizeTree
  };

  DataTree() = default;

  /// Creates the root node. Must be called exactly once, first.
  NodeId CreateRoot(std::string_view tag);

  /// Appends a child with the given tag under `parent`.
  NodeId AddChild(NodeId parent, std::string_view tag);

  /// Appends character data to a node's text payload.
  void AppendText(NodeId node, std::string_view text);

  size_t size() const { return nodes_.size(); }
  bool empty() const { return nodes_.empty(); }
  NodeId root() const { return nodes_.empty() ? kInvalidNodeId : 0; }

  const Node& node(NodeId id) const { return nodes_[id]; }
  Node& node(NodeId id) { return nodes_[id]; }

  /// Interns `name`, returning its stable TagId.
  TagId InternTag(std::string_view name);

  /// Looks up a tag by name; returns false if the tag never occurred.
  bool FindTag(std::string_view name, TagId* out) const;

  const std::string& tag_name(TagId tag) const { return tag_names_[tag]; }
  size_t num_tags() const { return tag_names_.size(); }

  /// All nodes with the given tag, in document (pre-)order of creation.
  std::vector<NodeId> NodesWithTag(TagId tag) const;

  /// Depth of a node (root = 0).
  int Depth(NodeId id) const;

  /// True iff `anc` is a proper ancestor of `desc` (by parent links —
  /// the ground truth the coding schemes are tested against).
  bool IsAncestorNode(NodeId anc, NodeId desc) const;

  /// Maximum number of children of any node.
  size_t MaxFanout() const;

  /// Maximum node depth.
  int MaxDepth() const;

 private:
  std::vector<Node> nodes_;
  std::vector<std::string> tag_names_;
  std::unordered_map<std::string, TagId> tag_ids_;
};

}  // namespace pbitree

#endif  // PBITREE_XML_DATA_TREE_H_
