#include "xml/serializer.h"

#include <fstream>
#include <vector>

namespace pbitree {

namespace {

void EscapeInto(std::string_view raw, std::string* out) {
  for (char c : raw) {
    switch (c) {
      case '<':
        *out += "&lt;";
        break;
      case '>':
        *out += "&gt;";
        break;
      case '&':
        *out += "&amp;";
        break;
      case '"':
        *out += "&quot;";
        break;
      default:
        *out += c;
    }
  }
}

bool IsAttributeNode(const DataTree& tree, NodeId id) {
  const std::string& name = tree.tag_name(tree.node(id).tag);
  return !name.empty() && name[0] == '@';
}

void Emit(const DataTree& tree, NodeId id, int depth,
          const SerializeOptions& opts, std::string* out) {
  const auto& node = tree.node(id);
  const std::string& name = tree.tag_name(node.tag);

  auto indent = [&](int d) {
    if (opts.indent) out->append(static_cast<size_t>(d) * 2, ' ');
  };

  indent(depth);
  *out += '<';
  *out += name;

  // Attribute children first.
  std::vector<NodeId> element_children;
  for (NodeId c : node.children) {
    if (IsAttributeNode(tree, c)) {
      const auto& a = tree.node(c);
      *out += ' ';
      *out += tree.tag_name(a.tag).substr(1);
      *out += "=\"";
      EscapeInto(a.text, out);
      *out += '"';
    } else {
      element_children.push_back(c);
    }
  }

  if (element_children.empty() && node.text.empty()) {
    *out += "/>";
    if (opts.indent) *out += '\n';
    return;
  }
  *out += '>';

  if (!node.text.empty()) EscapeInto(node.text, out);

  if (!element_children.empty()) {
    if (opts.indent) *out += '\n';
    for (NodeId c : element_children) Emit(tree, c, depth + 1, opts, out);
    indent(depth);
  }
  *out += "</";
  *out += name;
  *out += '>';
  if (opts.indent) *out += '\n';
}

}  // namespace

std::string SerializeXml(const DataTree& tree, const SerializeOptions& options) {
  std::string out;
  if (!tree.empty()) Emit(tree, tree.root(), 0, options, &out);
  return out;
}

Status WriteXmlFile(const std::string& path, const DataTree& tree,
                    const SerializeOptions& options) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << SerializeXml(tree, options);
  if (!out) return Status::IOError("write to " + path + " failed");
  return Status::OK();
}

}  // namespace pbitree
