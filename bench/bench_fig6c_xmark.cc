// Reproduces Table 2(c) and Figure 6(c): the ten BENCHMARK (XMark-like)
// containment joins B1-B10 — dataset statistics and the improvement
// ratio of MHCJ+Rollup and VPJ over MIN_RGN.
//
// Paper shape to verify: the partitioning algorithms are consistently
// better than MIN_RGN, improvement up to ~96% / speedup up to ~25x.

#include <algorithm>
#include <cstdio>

#include "bench/bench_common.h"
#include "datagen/xmark_gen.h"
#include "framework/planner.h"
#include "pbitree/binarize.h"

namespace pbitree {
namespace bench {
namespace {

void Run() {
  BenchConfig cfg = BenchConfig::FromEnv();
  // XMark SF=1 is the paper setting. The element sets of the B-joins
  // are ~100x smaller than the document, so this bench needs a larger
  // document than the synthetic ones to leave the noise floor; scale
  // up accordingly but never beyond the paper's SF=1.
  double sf = cfg.scale * 25;
  if (sf > 1.0) sf = 1.0;
  if (sf < 0.1) sf = 0.1;
  // Keep the paper's buffer-to-data ratio: 500 Minibase pages per SF=1,
  // divided by 4 because our 16-byte element records pack ~4x denser.
  size_t buffer_pages = std::max<size_t>(16, static_cast<size_t>(125 * sf));
  std::printf("=== Table 2(c) / Figure 6(c): BENCHMARK (XMark-like) joins ===\n");
  std::printf("SF=%g  buffer=%zu pages  sim_io=%.2f ms/page\n\n", sf,
              buffer_pages, cfg.sim_io_ms);

  DataTree tree;
  XmarkOptions gen;
  gen.scale_factor = sf;
  gen.seed = cfg.seed;
  if (Status st = GenerateXmark(&tree, gen); !st.ok()) {
    std::fprintf(stderr, "xmark generation failed: %s\n", st.ToString().c_str());
    return;
  }
  PBiTreeSpec spec;
  if (Status st = BinarizeTree(&tree, &spec); !st.ok()) {
    std::fprintf(stderr, "binarize failed: %s\n", st.ToString().c_str());
    return;
  }
  std::printf("document: %zu elements, PBiTree height %d\n\n", tree.size(),
              spec.height);

  std::printf("%-4s %-28s %9s %9s %9s | %9s %9s %9s | %8s %8s\n", "id",
              "join (anc // desc)", "|A|", "|D|", "#results", "MIN_RGN",
              "Rollup", "VPJ", "impRoll", "impVPJ");
  PrintRule(122);

  Env env(buffer_pages);
  for (const TagJoinSpec& join : XmarkJoins()) {
    auto a = ExtractTagSetByName(env.bm.get(), tree, spec, join.ancestor_tag);
    auto d = ExtractTagSetByName(env.bm.get(), tree, spec, join.descendant_tag);
    if (!a.ok() || !d.ok()) {
      std::printf("%-4s skipped (tag missing at this scale)\n", join.name.c_str());
      continue;
    }

    RunOptions opts;
    opts.cold_cache = true;
    opts.work_pages = buffer_pages;
    opts.simulated_io_ms = cfg.sim_io_ms;

    MinRgnResult min_rgn = MustRunMinRgn(env.bm.get(), *a, *d, opts);
    RunResult rollup =
        MustRun(Algorithm::kMhcjRollup, env.bm.get(), *a, *d, opts);
    RunResult vpj = MustRun(Algorithm::kVpj, env.bm.get(), *a, *d, opts);

    double t_min = min_rgn.best().simulated_seconds;
    std::string label = join.ancestor_tag + std::string(" // ") + join.descendant_tag;
    std::printf(
        "%-4s %-28s %9llu %9llu %9llu | %9s %9s %9s | %8s %8s\n",
        join.name.c_str(), label.c_str(),
        static_cast<unsigned long long>(a->num_records()),
        static_cast<unsigned long long>(d->num_records()),
        static_cast<unsigned long long>(rollup.output_pairs),
        FormatSeconds(t_min).c_str(),
        FormatSeconds(rollup.simulated_seconds).c_str(),
        FormatSeconds(vpj.simulated_seconds).c_str(),
        FormatRatio(ImprovementRatio(t_min, rollup.simulated_seconds)).c_str(),
        FormatRatio(ImprovementRatio(t_min, vpj.simulated_seconds)).c_str());
    if (rollup.output_pairs != vpj.output_pairs ||
        rollup.output_pairs != min_rgn.best().output_pairs) {
      std::fprintf(stderr, "RESULT MISMATCH on %s!\n", join.name.c_str());
    }
    a->file.Drop(env.bm.get());
    d->file.Drop(env.bm.get());
  }
  std::printf("\n(paper: improvement up to 96%%, speedup up to 25x)\n");
}

}  // namespace
}  // namespace bench
}  // namespace pbitree

int main() {
  pbitree::bench::Run();
  return 0;
}
