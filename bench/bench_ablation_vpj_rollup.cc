// Ablation of the design choices DESIGN.md calls out:
//  1. VPJ purging and merging on/off (Algorithm 5's refinement step),
//  2. MHCJ+Rollup height policy (roll-to-max vs roll-to-median), the
//     paper's "choose h within the height range of A" knob, and
//  3. MHCJ (no rollup) as the baseline the rollup was invented to fix
//     (the paper drops it from the tables because rollup always won).

#include <cstdio>

#include "bench/bench_common.h"
#include "datagen/synthetic.h"
#include "framework/planner.h"
#include "join/mhcj_rollup.h"
#include "join/vpj.h"

namespace pbitree {
namespace bench {
namespace {

void Run() {
  BenchConfig cfg = BenchConfig::FromEnv();
  std::printf("=== Ablation: VPJ refinement + rollup height policy ===\n");
  std::printf("scale=%g  buffer=%zu pages\n\n", cfg.scale,
              cfg.DefaultBufferPages());

  std::printf(
      "%-8s | %10s %10s %10s | %10s %10s %12s %12s\n", "dataset", "VPJ",
      "VPJ-merge", "VPJ-purge", "Roll(max)", "Roll(med)", "fh(max)", "MHCJ");
  PrintRule(102);

  for (const auto& named : CanonicalSyntheticSpecs(cfg.scale, cfg.seed)) {
    if (named.name[0] != 'M') continue;

    Env env(cfg.DefaultBufferPages());
    auto ds = GenerateSynthetic(env.bm.get(), named.spec);
    if (!ds.ok()) continue;

    RunOptions opts;
    opts.cold_cache = true;
    opts.work_pages = cfg.DefaultBufferPages();
    opts.simulated_io_ms = cfg.sim_io_ms;

    RunResult vpj = MustRun(Algorithm::kVpj, env.bm.get(), ds->a, ds->d, opts);
    RunOptions no_merge = opts;
    no_merge.vpj.enable_merging = false;
    RunResult vpj_nm =
        MustRun(Algorithm::kVpj, env.bm.get(), ds->a, ds->d, no_merge);
    RunOptions no_purge = opts;
    no_purge.vpj.enable_purging = false;
    RunResult vpj_np =
        MustRun(Algorithm::kVpj, env.bm.get(), ds->a, ds->d, no_purge);

    RunResult roll_max =
        MustRun(Algorithm::kMhcjRollup, env.bm.get(), ds->a, ds->d, opts);
    RunOptions med = opts;
    med.rollup_policy = RollupHeightPolicy::kMedian;
    RunResult roll_med =
        MustRun(Algorithm::kMhcjRollup, env.bm.get(), ds->a, ds->d, med);
    RunResult mhcj = MustRun(Algorithm::kMhcj, env.bm.get(), ds->a, ds->d, opts);

    std::printf("%-8s | %10s %10s %10s | %10s %10s %12llu %12s\n",
                named.name.c_str(),
                FormatSeconds(vpj.simulated_seconds).c_str(),
                FormatSeconds(vpj_nm.simulated_seconds).c_str(),
                FormatSeconds(vpj_np.simulated_seconds).c_str(),
                FormatSeconds(roll_max.simulated_seconds).c_str(),
                FormatSeconds(roll_med.simulated_seconds).c_str(),
                static_cast<unsigned long long>(roll_max.stats.false_hits),
                FormatSeconds(mhcj.simulated_seconds).c_str());
  }
  std::printf(
      "\n(expected: purging matters on skewed data; rollup beats plain MHCJ\n"
      " whenever A spans several heights — the reason the paper reports\n"
      " only MHCJ+Rollup)\n");
}

}  // namespace
}  // namespace bench
}  // namespace pbitree

int main() {
  pbitree::bench::Run();
  return 0;
}
