// Code-space sharding scaling sweep: the same containment join run
// against the same data stored at segment levels l = 0..3 (1 to 8
// segment files), serial and parallel. Reports simulated elapsed time
// (wall + sim_io_ms * page I/O, the paper's disk-bound regime),
// page reads and output throughput per segment count.
//
// Level 0 is the pre-sharding single-file layout; the sweep therefore
// measures exactly what the sharded layout buys (scatter-gather
// parallelism across per-segment pools) and what it costs (ancestor
// replicas at the cut, smaller per-segment pools). The pair count must
// be identical at every level — the bench exits nonzero on any
// mismatch, so CI can use it as a differential assertion as well.
//
// Extra knobs on top of bench_common.h:
//   PBITREE_BENCH_REPS    (default 3): timed repetitions; best wins.
//   PBITREE_BENCH_THREADS (default min(4, hw)): parallel-sweep width.
//   PBITREE_BENCH_JSON    (default BENCH_shard_scaling.json).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "common/env.h"
#include "datagen/synthetic.h"
#include "join/result_sink.h"
#include "storage/segment_store.h"

using namespace pbitree;
using namespace pbitree::bench;

namespace {

struct LevelRow {
  int level = 0;
  size_t segments = 1;
  uint64_t pairs = 0;
  uint64_t stored_records = 0;  // natives + ancestor replicas
  double serial_seconds = 0.0;
  double parallel_seconds = 0.0;
  uint64_t serial_page_reads = 0;
  uint64_t parallel_page_reads = 0;

  double Speedup() const { return serial_seconds / parallel_seconds; }
  double PairsPerSecond() const {
    return parallel_seconds > 0.0 ? static_cast<double>(pairs) /
                                        parallel_seconds
                                  : 0.0;
  }
};

RunResult MustRunSegmented(SegmentStore* store, const SegmentedSet& a,
                           const SegmentedSet& d, const RunOptions& opts) {
  CountingSink sink;
  auto run = RunSegmentedJoin(Algorithm::kVpj, store->main_bm(), a, d, &sink,
                              opts);
  if (!run.ok()) {
    std::fprintf(stderr, "VPJ at level %d: %s\n", a.level,
                 run.status().ToString().c_str());
    std::exit(1);
  }
  return *run;
}

/// Best simulated time over `reps` cold repetitions.
template <typename Body>
RunResult BestOf(int reps, Body&& body) {
  RunResult best;
  best.simulated_seconds = 1e300;
  for (int r = 0; r < reps; ++r) {
    RunResult run = body();
    if (run.simulated_seconds < best.simulated_seconds) best = run;
  }
  return best;
}

void WriteJson(const std::string& path, const BenchConfig& cfg,
               size_t threads, const std::vector<LevelRow>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f,
               "{\n  \"bench\": \"shard_scaling\",\n  \"scale\": %g,\n"
               "  \"sim_io_ms\": %g,\n  \"parallel_threads\": %zu,\n"
               "  \"results\": [\n",
               cfg.scale, cfg.sim_io_ms, threads);
  for (size_t i = 0; i < rows.size(); ++i) {
    const LevelRow& r = rows[i];
    std::fprintf(
        f,
        "    {\"level\": %d, \"segments\": %zu, \"pairs\": %llu, "
        "\"stored_records\": %llu, \"serial_ms\": %.3f, "
        "\"parallel_ms\": %.3f, \"speedup\": %.3f, "
        "\"pairs_per_second\": %.1f, \"page_reads_serial\": %llu, "
        "\"page_reads_parallel\": %llu}%s\n",
        r.level, r.segments, static_cast<unsigned long long>(r.pairs),
        static_cast<unsigned long long>(r.stored_records),
        r.serial_seconds * 1e3, r.parallel_seconds * 1e3, r.Speedup(),
        r.PairsPerSecond(),
        static_cast<unsigned long long>(r.serial_page_reads),
        static_cast<unsigned long long>(r.parallel_page_reads),
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main() {
  BenchConfig cfg = BenchConfig::FromEnv();
  const int reps =
      static_cast<int>(EnvInt64Checked("PBITREE_BENCH_REPS", 3, 1, 1000));
  const size_t hw = std::max(1u, std::thread::hardware_concurrency());
  const size_t threads = static_cast<size_t>(
      EnvInt64Checked("PBITREE_BENCH_THREADS",
                      static_cast<int64_t>(std::min<size_t>(4, hw)), 1, 256));
  const char* json_env = std::getenv("PBITREE_BENCH_JSON");
  const std::string json_path =
      json_env != nullptr ? json_env : "BENCH_shard_scaling.json";

  // The canonical multi-height shape (every element far below the
  // cuts, so segments partition the data cleanly — the regime sharding
  // targets; the replication cost at the cut is covered by the
  // differential suite in tests/segment_test.cc).
  SyntheticSpec spec;
  spec.tree_height = 40;
  spec.a_count = static_cast<uint64_t>(std::max(1e6 * cfg.scale, 2000.0));
  spec.d_count = spec.a_count;
  spec.a_heights = {10, 11, 12};
  spec.d_heights = {2, 3};
  spec.match_fraction = 0.5;
  spec.seed = cfg.seed;

  const size_t pool = std::max<size_t>(cfg.DefaultBufferPages(), 64);
  Env scratch(pool);
  auto ds = GenerateSynthetic(scratch.bm.get(), spec);
  if (!ds.ok()) {
    std::fprintf(stderr, "generate: %s\n", ds.status().ToString().c_str());
    return 1;
  }

  std::printf("=== VPJ vs segment count (code-space sharding) ===\n");
  std::printf("scale=%g  |A|=|D|=%llu  pool=%zu pages  threads=%zu  reps=%d\n\n",
              cfg.scale, static_cast<unsigned long long>(spec.a_count), pool,
              threads, reps);

  RunOptions opts;
  opts.work_pages = pool;
  opts.cold_cache = true;  // every rep pays the full I/O
  opts.simulated_io_ms = cfg.sim_io_ms;

  std::vector<LevelRow> rows;
  for (int level : {0, 1, 2, 3}) {
    SegmentStore::Options sopts;
    sopts.backend = "mem";
    sopts.pool_pages = pool;
    sopts.create_level = level;
    auto store = SegmentStore::Open(sopts);
    if (!store.ok()) {
      std::fprintf(stderr, "open level %d: %s\n", level,
                   store.status().ToString().c_str());
      return 1;
    }
    if (Status st = (*store)->StoreSet("a", ds->a, scratch.bm.get());
        !st.ok()) {
      std::fprintf(stderr, "store a: %s\n", st.ToString().c_str());
      return 1;
    }
    if (Status st = (*store)->StoreSet("d", ds->d, scratch.bm.get());
        !st.ok()) {
      std::fprintf(stderr, "store d: %s\n", st.ToString().c_str());
      return 1;
    }
    auto a = (*store)->Load("a");
    auto d = (*store)->Load("d");
    if (!a.ok() || !d.ok()) {
      std::fprintf(stderr, "load at level %d failed\n", level);
      return 1;
    }

    LevelRow row;
    row.level = level;
    row.segments = (*store)->num_segments();
    for (const SegmentedSet::Segment& piece : a->segments) {
      row.stored_records += piece.set.num_records();
    }
    for (const SegmentedSet::Segment& piece : d->segments) {
      row.stored_records += piece.set.num_records();
    }

    RunOptions serial = opts;
    serial.threads = 1;
    RunResult sr = BestOf(reps, [&] {
      return MustRunSegmented(store->get(), *a, *d, serial);
    });
    RunOptions par = opts;
    par.threads = threads;
    RunResult pr = BestOf(reps, [&] {
      return MustRunSegmented(store->get(), *a, *d, par);
    });

    if (sr.output_pairs != pr.output_pairs) {
      std::fprintf(stderr, "PARITY FAILURE: level %d serial %llu pairs vs "
                           "parallel %llu\n",
                   level, static_cast<unsigned long long>(sr.output_pairs),
                   static_cast<unsigned long long>(pr.output_pairs));
      return 1;
    }
    row.pairs = sr.output_pairs;
    row.serial_seconds = sr.simulated_seconds;
    row.parallel_seconds = pr.simulated_seconds;
    row.serial_page_reads = sr.page_reads;
    row.parallel_page_reads = pr.page_reads;
    rows.push_back(row);
  }

  bool ok = true;
  for (const LevelRow& r : rows) {
    if (r.pairs != rows.front().pairs) {
      std::fprintf(stderr,
                   "PARITY FAILURE: level %d produced %llu pairs, level 0 "
                   "produced %llu\n",
                   r.level, static_cast<unsigned long long>(r.pairs),
                   static_cast<unsigned long long>(rows.front().pairs));
      ok = false;
    }
  }

  std::printf("%-6s %9s %10s %10s %10s %8s %12s %9s %9s\n", "level",
              "segments", "stored", "serial", "parallel", "speedup",
              "pairs/s", "reads(s)", "reads(p)");
  PrintRule(92);
  for (const LevelRow& r : rows) {
    std::printf("%-6d %9zu %10llu %10s %10s %7.2fx %12.0f %9llu %9llu\n",
                r.level, r.segments,
                static_cast<unsigned long long>(r.stored_records),
                FormatSeconds(r.serial_seconds).c_str(),
                FormatSeconds(r.parallel_seconds).c_str(), r.Speedup(),
                r.PairsPerSecond(),
                static_cast<unsigned long long>(r.serial_page_reads),
                static_cast<unsigned long long>(r.parallel_page_reads));
  }

  WriteJson(json_path, cfg, threads, rows);
  std::printf("\nresults -> %s\n", json_path.c_str());
  return ok ? 0 : 1;
}
