// Parallel speedup of the partition-based joins: SHCJ, MHCJ(+Rollup)
// and VPJ at 1/2/4/8 worker threads on the in-memory backend.
//
// threads=1 is the paper-faithful serial execution; the other rows
// show how far the independent partition pairs parallelise. Page I/O
// is reported alongside elapsed time because the per-worker budget
// slices change the partition fan-out (more, smaller partitions), so
// the I/O counts legitimately differ from the serial run — the result
// *sets* do not (see tests/join_correctness_test.cc).
//
// Honours PBITREE_BENCH_SCALE / PBITREE_BENCH_SEED; emits a table and
// a JSON array on stdout.

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "datagen/synthetic.h"

using namespace pbitree;
using namespace pbitree::bench;

namespace {

struct SpeedupRow {
  const char* algorithm;
  size_t threads;
  double seconds;
  uint64_t page_reads;
  uint64_t page_writes;
  uint64_t output_pairs;
};

SyntheticSpec MakeSpec(bool multi_height, double scale, uint64_t seed) {
  SyntheticSpec spec;
  spec.tree_height = 40;
  spec.a_count = spec.d_count = static_cast<uint64_t>(250000 * scale);
  spec.match_fraction = 0.5;
  spec.seed = seed;
  if (multi_height) {
    spec.a_heights = {10, 11, 12};
    spec.d_heights = {2, 3, 4, 5};
  } else {
    spec.a_heights = {10};
    spec.d_heights = {2};
  }
  return spec;
}

}  // namespace

int main() {
  BenchConfig cfg = BenchConfig::FromEnv();
  // Floor the dataset so multiple partitions exist even at tiny global
  // scales — a one-partition join has nothing to parallelise.
  const double scale = std::max(cfg.scale, 0.2);
  std::printf("=== parallel speedup: partitioned joins, 1/2/4/8 threads ===\n");
  std::printf("scale=%g (elements per side: %llu)  hardware threads: %u\n\n",
              scale,
              static_cast<unsigned long long>(
                  static_cast<uint64_t>(250000 * scale)),
              std::thread::hardware_concurrency());
  if (std::thread::hardware_concurrency() < 2) {
    std::printf("NOTE: single-core host — rows beyond threads=1 can only\n"
                "show scheduling overhead, not speedup.\n\n");
  }

  struct Config {
    const char* name;
    Algorithm algorithm;
    bool multi_height;
  };
  const Config configs[] = {
      {"SHCJ", Algorithm::kShcj, false},
      {"MHCJ", Algorithm::kMhcjRollup, true},
      {"VPJ", Algorithm::kVpj, true},
  };
  const size_t thread_counts[] = {1, 2, 4, 8};

  std::vector<SpeedupRow> rows;
  std::printf("%-6s %8s | %10s %8s %10s %10s\n", "algo", "threads", "seconds",
              "speedup", "reads", "writes");
  PrintRule(60);

  for (const Config& c : configs) {
    SyntheticSpec spec = MakeSpec(c.multi_height, scale, cfg.seed);
    // A budget of ~1/8 of the smaller side's pages forces several
    // Grace/vertical partitions — the unit of parallelism.
    uint64_t data_pages =
        (spec.a_count + HeapFile::kRecordsPerPage - 1) / HeapFile::kRecordsPerPage;
    size_t work_pages = static_cast<size_t>(data_pages / 8);
    if (work_pages < 16) work_pages = 16;

    double serial_seconds = 0.0;
    for (size_t threads : thread_counts) {
      Env env(work_pages * 2);
      auto ds = GenerateSynthetic(env.bm.get(), spec);
      if (!ds.ok()) {
        std::fprintf(stderr, "generate %s: %s\n", c.name,
                     ds.status().ToString().c_str());
        return 1;
      }
      RunOptions opts;
      opts.cold_cache = true;
      opts.work_pages = work_pages;
      opts.threads = threads;

      RunResult r = MustRun(c.algorithm, env.bm.get(), ds->a, ds->d, opts);
      if (threads == 1) serial_seconds = r.wall_seconds;
      rows.push_back({c.name, threads, r.wall_seconds, r.page_reads,
                      r.page_writes, r.output_pairs});

      char speedup[16];
      std::snprintf(speedup, sizeof(speedup), "%.2fx",
                    r.wall_seconds > 0 ? serial_seconds / r.wall_seconds : 0.0);
      std::printf("%-6s %8zu | %10s %8s %10llu %10llu\n", c.name, threads,
                  FormatSeconds(r.wall_seconds).c_str(), speedup,
                  static_cast<unsigned long long>(r.page_reads),
                  static_cast<unsigned long long>(r.page_writes));
    }
  }

  std::printf("\nJSON:\n[");
  for (size_t i = 0; i < rows.size(); ++i) {
    const SpeedupRow& r = rows[i];
    std::printf(
        "%s\n  {\"algorithm\": \"%s\", \"threads\": %zu, \"seconds\": %.6f, "
        "\"page_reads\": %llu, \"page_writes\": %llu, \"output_pairs\": %llu}",
        i == 0 ? "" : ",", r.algorithm, r.threads, r.seconds,
        static_cast<unsigned long long>(r.page_reads),
        static_cast<unsigned long long>(r.page_writes),
        static_cast<unsigned long long>(r.output_pairs));
  }
  std::printf("\n]\n");
  return 0;
}
