// Measures the two halves of the SIMD + page-codec work:
//
//   kernels    in-memory throughput (codes/sec) of the batch ancestor
//              kernels with the AVX2 path forced off vs on — the
//              probe-bound inner loops with no I/O in the way.
//   join       MPMGJN over presorted single-height synthetic sets
//              stored raw vs kFoRDelta: identical pair output, fewer
//              pages, and the simulated disk-bound time that falls out.
//
// Knobs on top of bench_common.h:
//   PBITREE_BENCH_REPS            (default 5): timed reps; best wins.
//   PBITREE_BENCH_MIN_SIMD_RATIO  (default 0 = report only): exit
//                                 nonzero unless the BEST kernel
//                                 speedup reaches this factor — CI sets
//                                 1.5. Skipped (with a note) when the
//                                 host has no AVX2: the scalar fallback
//                                 is the point there, not a regression.
//   PBITREE_BENCH_JSON            (default BENCH_simd_codec.json).
//
// The join leg always asserts: byte-identical pair counts across
// codecs and a strictly smaller page count under kFoRDelta.

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/random.h"
#include "common/env.h"
#include "datagen/synthetic.h"
#include "framework/runner.h"
#include "join/element_set.h"
#include "join/result_sink.h"
#include "pbitree/simd.h"
#include "sort/external_sort.h"
#include "storage/page_codec.h"

namespace pbitree {
namespace bench {
namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct KernelRow {
  std::string kernel;
  double scalar_cps = 0.0;  // codes per second, AVX2 forced off
  double simd_cps = 0.0;    // codes per second, AVX2 forced on
  double Ratio() const { return scalar_cps == 0.0 ? 0.0 : simd_cps / scalar_cps; }
};

/// Best-of-reps throughput of one kernel pass over `codes_per_pass`
/// codes, with the SIMD flag pinned to `simd`. The checksum keeps the
/// optimiser from discarding the work.
template <typename Body>
double MeasureCps(int reps, int passes, uint64_t codes_per_pass, bool simd,
                  uint64_t* checksum, Body&& body) {
  simd::ScopedEnable scope(simd);
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    uint64_t check = 0;
    double t0 = NowSeconds();
    for (int p = 0; p < passes; ++p) check += body();
    double dt = NowSeconds() - t0;
    *checksum = check;
    best = std::min(best, dt);
  }
  return static_cast<double>(codes_per_pass) * passes / best;
}

std::vector<KernelRow> RunKernelBench(int reps) {
  // One fixed probe-bound dataset: a start-sorted code array of a
  // height-40 tree plus a mid-height ancestor whose subtree covers a
  // few percent of it — the FilterDescendants hit rate of a selective
  // merge step.
  const size_t n = size_t{1} << 20;
  Random rng(42);
  const PBiTreeSpec spec{40};
  std::vector<Code> codes(n);
  for (Code& c : codes) c = rng.Uniform(spec.MaxCode()) + 1;
  std::sort(codes.begin(), codes.end(),
            [](Code a, Code b) { return StartOf(a) < StartOf(b); });
  const Code anc = AncestorAtHeight(codes[n / 2], 35);
  std::vector<Code> out(n);
  std::vector<uint64_t> keys(n);
  std::vector<uint64_t> pairs(2 * n);
  const int passes = 16;

  std::vector<KernelRow> rows;
  auto measure = [&](const char* name, auto&& body) {
    KernelRow row;
    row.kernel = name;
    uint64_t check_scalar = 0, check_simd = 0;
    row.scalar_cps = MeasureCps(reps, passes, n, false, &check_scalar, body);
    row.simd_cps = MeasureCps(reps, passes, n, true, &check_simd, body);
    if (check_scalar != check_simd) {
      std::fprintf(stderr, "KERNEL PARITY FAILURE [%s]: %llu vs %llu\n", name,
                   static_cast<unsigned long long>(check_scalar),
                   static_cast<unsigned long long>(check_simd));
      std::exit(1);
    }
    rows.push_back(row);
  };

  measure("filter_descendants", [&] {
    return static_cast<uint64_t>(
        simd::FilterDescendants(anc, codes.data(), 1, n, out.data()));
  });
  measure("ancestor_mask", [&] {
    uint64_t hits = 0;
    for (size_t base = 0; base + 64 <= n; base += 64) {
      hits += static_cast<uint64_t>(std::popcount(
          simd::AncestorMask64(codes.data() + base, 64, anc)));
    }
    return hits;
  });
  measure("rolled_keys", [&] {
    simd::RolledKeys(codes.data(), 1, n, 20, keys.data());
    return keys[n - 1] + keys[0];
  });
  measure("pack_pairs", [&] {
    simd::PackPairsFixedAncestor(anc, codes.data(), n, pairs.data());
    return pairs[2 * n - 1];
  });
  return rows;
}

struct JoinRow {
  uint64_t pairs = 0;
  uint64_t input_pages = 0;  // a + d stored pages under this codec
  uint64_t total_io = 0;
  double best_seconds = 1e300;       // wall
  double best_sim_seconds = 1e300;   // wall + simulated disk charge
};

ElementSet BuildSorted(BufferManager* bm, const std::vector<ElementRecord>& recs,
                       PBiTreeSpec spec, PageCodecKind codec) {
  auto b = ElementSetBuilder::Create(bm, spec, codec);
  if (!b.ok()) {
    std::fprintf(stderr, "builder: %s\n", b.status().ToString().c_str());
    std::exit(1);
  }
  for (const ElementRecord& rec : recs) {
    if (Status st = b->Add(rec); !st.ok()) {
      std::fprintf(stderr, "add: %s\n", st.ToString().c_str());
      std::exit(1);
    }
  }
  ElementSet set = b->Build();
  set.sorted_by_start = true;  // records arrive presorted
  return set;
}

std::vector<ElementRecord> ReadSortedRecords(BufferManager* bm,
                                             const HeapFile& file) {
  std::vector<ElementRecord> recs;
  recs.reserve(file.num_records());
  HeapFile::Scanner scan(bm, file);
  ElementRecord rec;
  while (scan.NextElement(&rec)) recs.push_back(rec);
  if (!scan.status().ok()) {
    std::fprintf(stderr, "scan: %s\n", scan.status().ToString().c_str());
    std::exit(1);
  }
  std::sort(recs.begin(), recs.end(),
            [](const ElementRecord& a, const ElementRecord& b) {
              return ElementLess(a, b, SortOrder::kStartOrder);
            });
  return recs;
}

JoinRow RunJoinBench(const BenchConfig& cfg, int reps, PageCodecKind codec) {
  Env env(cfg.DefaultBufferPages() + 16);
  env.bm->set_readahead_pages(0);
  SyntheticSpec spec;
  spec.a_count = static_cast<uint64_t>(1e5 * cfg.scale * 10);
  spec.d_count = static_cast<uint64_t>(1e5 * cfg.scale * 10);
  spec.a_heights = {10};
  spec.d_heights = {2};
  spec.match_fraction = 0.2;
  spec.seed = cfg.seed;
  auto ds = GenerateSynthetic(env.bm.get(), spec);
  if (!ds.ok()) {
    std::fprintf(stderr, "generate: %s\n", ds.status().ToString().c_str());
    std::exit(1);
  }
  std::vector<ElementRecord> a_recs = ReadSortedRecords(env.bm.get(), ds->a.file);
  std::vector<ElementRecord> d_recs = ReadSortedRecords(env.bm.get(), ds->d.file);
  PBiTreeSpec tree_spec{spec.tree_height};
  ElementSet a = BuildSorted(env.bm.get(), a_recs, tree_spec, codec);
  ElementSet d = BuildSorted(env.bm.get(), d_recs, tree_spec, codec);

  JoinRow row;
  row.input_pages = a.num_pages() + d.num_pages();
  RunOptions opts;
  opts.work_pages = cfg.DefaultBufferPages();
  opts.simulated_io_ms = cfg.sim_io_ms;
  for (int r = 0; r < reps; ++r) {
    if (Status st = env.bm->PurgeAll(); !st.ok()) {
      std::fprintf(stderr, "PurgeAll: %s\n", st.ToString().c_str());
      std::exit(1);
    }
    CountingSink sink;
    auto res = RunJoin(Algorithm::kMpmgjn, env.bm.get(), a, d, &sink, opts);
    if (!res.ok()) {
      std::fprintf(stderr, "MPMGJN: %s\n", res.status().ToString().c_str());
      std::exit(1);
    }
    row.pairs = res->output_pairs;
    row.total_io = res->TotalIO();
    row.best_seconds = std::min(row.best_seconds, res->wall_seconds);
    row.best_sim_seconds = std::min(row.best_sim_seconds, res->simulated_seconds);
  }
  return row;
}

void WriteJson(const std::string& path, const std::vector<KernelRow>& kernels,
               const JoinRow& raw, const JoinRow& fd) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f,
               "{\n  \"bench\": \"simd_codec\",\n  \"avx2\": %s,\n"
               "  \"kernels\": [\n",
               simd::Avx2Available() ? "true" : "false");
  for (size_t i = 0; i < kernels.size(); ++i) {
    const KernelRow& k = kernels[i];
    std::fprintf(f,
                 "    {\"kernel\": \"%s\", \"scalar_codes_per_sec\": %.3e, "
                 "\"simd_codes_per_sec\": %.3e, \"ratio\": %.3f}%s\n",
                 k.kernel.c_str(), k.scalar_cps, k.simd_cps, k.Ratio(),
                 i + 1 < kernels.size() ? "," : "");
  }
  std::fprintf(
      f,
      "  ],\n  \"join\": {\"algorithm\": \"MPMGJN\", \"pairs\": %llu,\n"
      "    \"raw\": {\"input_pages\": %llu, \"total_io\": %llu, "
      "\"wall_ms\": %.3f, \"simulated_ms\": %.3f},\n"
      "    \"for_delta\": {\"input_pages\": %llu, \"total_io\": %llu, "
      "\"wall_ms\": %.3f, \"simulated_ms\": %.3f},\n"
      "    \"page_reduction\": %.3f}\n}\n",
      static_cast<unsigned long long>(raw.pairs),
      static_cast<unsigned long long>(raw.input_pages),
      static_cast<unsigned long long>(raw.total_io), raw.best_seconds * 1e3,
      raw.best_sim_seconds * 1e3,
      static_cast<unsigned long long>(fd.input_pages),
      static_cast<unsigned long long>(fd.total_io), fd.best_seconds * 1e3,
      fd.best_sim_seconds * 1e3,
      fd.input_pages == 0
          ? 0.0
          : static_cast<double>(raw.input_pages) /
                static_cast<double>(fd.input_pages));
  std::fclose(f);
}

int Run() {
  BenchConfig cfg = BenchConfig::FromEnv();
  const int reps =
      static_cast<int>(EnvInt64Checked("PBITREE_BENCH_REPS", 5, 1, 1000));
  const double min_ratio =
      EnvDoubleChecked("PBITREE_BENCH_MIN_SIMD_RATIO", 0.0, 0.0, 1e6);
  const char* json_env = std::getenv("PBITREE_BENCH_JSON");
  const std::string json_path =
      json_env != nullptr ? json_env : "BENCH_simd_codec.json";

  std::printf("=== batch kernels: scalar vs AVX2 (avx2 %s) ===\n",
              simd::Avx2Available() ? "available" : "NOT available");
  std::vector<KernelRow> kernels = RunKernelBench(reps);
  std::printf("%-20s %14s %14s %8s\n", "kernel", "scalar c/s", "simd c/s",
              "ratio");
  PrintRule(60);
  double best_ratio = 0.0;
  for (const KernelRow& k : kernels) {
    std::printf("%-20s %14.3e %14.3e %7.2fx\n", k.kernel.c_str(), k.scalar_cps,
                k.simd_cps, k.Ratio());
    best_ratio = std::max(best_ratio, k.Ratio());
  }

  std::printf("\n=== MPMGJN: raw vs for-delta pages (scale=%g) ===\n",
              cfg.scale);
  JoinRow raw = RunJoinBench(cfg, reps, PageCodecKind::kRaw);
  JoinRow fd = RunJoinBench(cfg, reps, PageCodecKind::kFoRDelta);
  std::printf("%-10s %12s %10s %10s %12s\n", "codec", "input pages", "io",
              "wall", "simulated");
  PrintRule(60);
  std::printf("%-10s %12llu %10llu %10s %12s\n", "raw",
              static_cast<unsigned long long>(raw.input_pages),
              static_cast<unsigned long long>(raw.total_io),
              FormatSeconds(raw.best_seconds).c_str(),
              FormatSeconds(raw.best_sim_seconds).c_str());
  std::printf("%-10s %12llu %10llu %10s %12s\n", "for-delta",
              static_cast<unsigned long long>(fd.input_pages),
              static_cast<unsigned long long>(fd.total_io),
              FormatSeconds(fd.best_seconds).c_str(),
              FormatSeconds(fd.best_sim_seconds).c_str());

  bool ok = true;
  if (raw.pairs != fd.pairs) {
    std::fprintf(stderr, "PARITY FAILURE: %llu pairs raw vs %llu for-delta\n",
                 static_cast<unsigned long long>(raw.pairs),
                 static_cast<unsigned long long>(fd.pairs));
    ok = false;
  }
  if (fd.input_pages >= raw.input_pages) {
    std::fprintf(stderr,
                 "PAGE FAILURE: for-delta %llu pages not below raw %llu\n",
                 static_cast<unsigned long long>(fd.input_pages),
                 static_cast<unsigned long long>(raw.input_pages));
    ok = false;
  }
  if (min_ratio > 0.0) {
    if (!simd::Avx2Available()) {
      std::printf("\nno AVX2 on this host: ratio floor %.2fx skipped "
                  "(scalar fallback verified by the parity checks)\n",
                  min_ratio);
    } else if (best_ratio < min_ratio) {
      std::fprintf(stderr,
                   "SIMD RATIO FAILURE: best kernel %.2fx below required "
                   "%.2fx\n",
                   best_ratio, min_ratio);
      ok = false;
    }
  }

  WriteJson(json_path, kernels, raw, fd);
  std::printf("\nresults -> %s\n", json_path.c_str());
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace pbitree

int main() { return pbitree::bench::Run(); }
