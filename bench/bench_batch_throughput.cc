// Measures the batched data path against a record-at-a-time baseline
// on the two scan-bound workloads the refactor targets:
//
//   scan       full-file scan (sum of codes) — pure storage-boundary
//              cost: per-record memcpy + bounds check vs one span per
//              page.
//   stacktree  STACKTREE over sorted inputs into a CountingSink — the
//              merge loop plus per-pair virtual dispatch vs BatchCursor
//              and PairBuffer emission.
//
// The scalar baselines are reimplemented here (the library paths are
// batched now); both variants must agree on results AND on disk page
// reads from a cold pool — the bench exits nonzero on any mismatch, so
// CI uses it as the scalar-vs-batched I/O-parity assertion.
//
// Extra knobs on top of bench_common.h:
//   PBITREE_BENCH_REPS  (default 5): timed repetitions; best run wins.
//   PBITREE_BENCH_JSON  (default BENCH_batch_throughput.json): output
//                       path of the machine-readable results.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/env.h"
#include "datagen/synthetic.h"
#include "join/join_context.h"
#include "join/result_sink.h"
#include "join/stack_tree.h"
#include "pbitree/code.h"
#include "sort/external_sort.h"

namespace pbitree {
namespace bench {
namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Measured {
  double best_seconds = 1e300;
  uint64_t page_reads = 0;  // cold-pool disk reads of the last rep
  uint64_t check = 0;       // workload-defined result checksum
};

struct Row {
  std::string workload;
  Measured scalar;
  Measured batched;
  double Speedup() const { return scalar.best_seconds / batched.best_seconds; }
};

/// Runs `body` `reps` times from a cold buffer pool, keeping the best
/// wall time and the per-rep disk reads (identical across reps by
/// construction — the pool is purged each time).
template <typename Body>
Measured TimeColdRuns(Env* env, int reps, Body&& body) {
  Measured m;
  for (int r = 0; r < reps; ++r) {
    if (Status st = env->bm->PurgeAll(); !st.ok()) {
      std::fprintf(stderr, "PurgeAll: %s\n", st.ToString().c_str());
      std::exit(1);
    }
    uint64_t reads_before = env->disk->stats().page_reads;
    double t0 = NowSeconds();
    m.check = body();
    double dt = NowSeconds() - t0;
    m.page_reads = env->disk->stats().page_reads - reads_before;
    if (dt < m.best_seconds) m.best_seconds = dt;
  }
  return m;
}

uint64_t ScanScalar(Env* env, const HeapFile& file) {
  HeapFile::Scanner scan(env->bm.get(), file);
  ElementRecord rec;
  uint64_t sum = 0;
  while (scan.NextElement(&rec)) sum += rec.code;
  if (!scan.status().ok()) {
    std::fprintf(stderr, "scan: %s\n", scan.status().ToString().c_str());
    std::exit(1);
  }
  return sum;
}

uint64_t ScanBatched(Env* env, const HeapFile& file) {
  HeapFile::Scanner scan(env->bm.get(), file);
  uint64_t sum = 0;
  for (auto batch = scan.NextElementBatch(); !batch.empty();
       batch = scan.NextElementBatch()) {
    for (const ElementRecord& rec : batch) sum += rec.code;
  }
  if (!scan.status().ok()) {
    std::fprintf(stderr, "scan: %s\n", scan.status().ToString().c_str());
    std::exit(1);
  }
  return sum;
}

/// The pre-refactor STACKTREE inner loop: record-at-a-time scanners,
/// one virtual OnPair (plus Status check) per result pair.
uint64_t StackTreeScalar(Env* env, const ElementSet& a, const ElementSet& d,
                         ResultSink* sink) {
  HeapFile::Scanner a_scan(env->bm.get(), a.file);
  HeapFile::Scanner d_scan(env->bm.get(), d.file);
  ElementRecord a_rec, d_rec;
  bool a_live = a_scan.NextElement(&a_rec);
  bool d_live = d_scan.NextElement(&d_rec);
  std::vector<Code> stack;
  uint64_t pairs = 0;
  while (d_live && (a_live || !stack.empty())) {
    if (a_live && ElementLess(a_rec, d_rec, SortOrder::kStartOrder)) {
      while (!stack.empty() && EndOf(stack.back()) < StartOf(a_rec.code)) {
        stack.pop_back();
      }
      stack.push_back(a_rec.code);
      a_live = a_scan.NextElement(&a_rec);
    } else {
      while (!stack.empty() && EndOf(stack.back()) < StartOf(d_rec.code)) {
        stack.pop_back();
      }
      for (Code anc : stack) {
        if (IsAncestor(anc, d_rec.code)) {
          ++pairs;
          if (Status st = sink->OnPair(anc, d_rec.code); !st.ok()) {
            std::fprintf(stderr, "sink: %s\n", st.ToString().c_str());
            std::exit(1);
          }
        }
      }
      d_live = d_scan.NextElement(&d_rec);
    }
  }
  if (!a_scan.status().ok() || !d_scan.status().ok()) {
    std::fprintf(stderr, "stacktree scan failed\n");
    std::exit(1);
  }
  return pairs;
}

uint64_t StackTreeBatched(Env* env, size_t work_pages, const ElementSet& a,
                          const ElementSet& d, ResultSink* sink) {
  JoinContext ctx(env->bm.get(), work_pages);
  if (Status st = StackTreeJoin(&ctx, a, d, sink); !st.ok()) {
    std::fprintf(stderr, "StackTreeJoin: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  return ctx.stats.output_pairs;
}

ElementSet SortedByStart(Env* env, const ElementSet& s) {
  auto sorted = ExternalSort(env->bm.get(), s.file, 64, SortOrder::kStartOrder);
  if (!sorted.ok()) {
    std::fprintf(stderr, "sort: %s\n", sorted.status().ToString().c_str());
    std::exit(1);
  }
  ElementSet out = s;
  out.file = *sorted;
  out.sorted_by_start = true;
  return out;
}

bool CheckParity(const Row& row) {
  bool ok = true;
  if (row.scalar.check != row.batched.check) {
    std::fprintf(stderr, "PARITY FAILURE [%s]: result %llu scalar vs %llu batched\n",
                 row.workload.c_str(),
                 static_cast<unsigned long long>(row.scalar.check),
                 static_cast<unsigned long long>(row.batched.check));
    ok = false;
  }
  if (row.scalar.page_reads != row.batched.page_reads) {
    std::fprintf(stderr,
                 "PARITY FAILURE [%s]: page reads %llu scalar vs %llu batched\n",
                 row.workload.c_str(),
                 static_cast<unsigned long long>(row.scalar.page_reads),
                 static_cast<unsigned long long>(row.batched.page_reads));
    ok = false;
  }
  return ok;
}

void WriteJson(const std::string& path, const std::vector<Row>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"batch_throughput\",\n  \"results\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"workload\": \"%s\", \"scalar_ms\": %.3f, "
                 "\"batched_ms\": %.3f, \"speedup\": %.3f, "
                 "\"page_reads_scalar\": %llu, \"page_reads_batched\": %llu}%s\n",
                 r.workload.c_str(), r.scalar.best_seconds * 1e3,
                 r.batched.best_seconds * 1e3, r.Speedup(),
                 static_cast<unsigned long long>(r.scalar.page_reads),
                 static_cast<unsigned long long>(r.batched.page_reads),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

int Run() {
  BenchConfig cfg = BenchConfig::FromEnv();
  const int reps =
      static_cast<int>(EnvInt64Checked("PBITREE_BENCH_REPS", 5, 1, 1000));
  const char* json_env = std::getenv("PBITREE_BENCH_JSON");
  const std::string json_path =
      json_env != nullptr ? json_env : "BENCH_batch_throughput.json";

  std::printf("=== batch vs record-at-a-time data path ===\n");
  std::printf("scale=%g  buffer=%zu pages  reps=%d\n\n", cfg.scale,
              cfg.DefaultBufferPages(), reps);

  Env env(cfg.DefaultBufferPages());
  // Two large single-height sets with low selectivity: the join's cost
  // is dominated by scanning and merging, not by emitting pairs — the
  // scan-bound regime the batched path targets. (High-selectivity
  // datasets spend their time in the per-pair ancestor checks, which
  // are identical in both variants.)
  SyntheticSpec spec;
  spec.a_count = static_cast<uint64_t>(1e6 * cfg.scale);
  spec.d_count = static_cast<uint64_t>(1e6 * cfg.scale);
  spec.a_heights = {10};
  spec.d_heights = {2};
  spec.match_fraction = 0.05;
  spec.seed = cfg.seed;
  auto ds = GenerateSynthetic(env.bm.get(), spec);
  if (!ds.ok()) {
    std::fprintf(stderr, "generate: %s\n", ds.status().ToString().c_str());
    return 1;
  }
  ElementSet a_sorted = SortedByStart(&env, ds->a);
  ElementSet d_sorted = SortedByStart(&env, ds->d);

  std::vector<Row> rows;
  {
    Row row;
    row.workload = "scan";
    row.scalar = TimeColdRuns(&env, reps,
                              [&] { return ScanScalar(&env, ds->a.file); });
    row.batched = TimeColdRuns(&env, reps,
                               [&] { return ScanBatched(&env, ds->a.file); });
    rows.push_back(row);
  }
  {
    const size_t work = cfg.DefaultBufferPages();
    Row row;
    row.workload = "stacktree";
    row.scalar = TimeColdRuns(&env, reps, [&] {
      CountingSink sink;
      return StackTreeScalar(&env, a_sorted, d_sorted, &sink);
    });
    row.batched = TimeColdRuns(&env, reps, [&] {
      CountingSink sink;
      return StackTreeBatched(&env, work, a_sorted, d_sorted, &sink);
    });
    rows.push_back(row);
  }

  std::printf("%-10s %12s %12s %9s %12s %12s\n", "workload", "scalar",
              "batched", "speedup", "reads(s)", "reads(b)");
  PrintRule(72);
  bool parity = true;
  for (const Row& r : rows) {
    std::printf("%-10s %12s %12s %8.2fx %12llu %12llu\n", r.workload.c_str(),
                FormatSeconds(r.scalar.best_seconds).c_str(),
                FormatSeconds(r.batched.best_seconds).c_str(), r.Speedup(),
                static_cast<unsigned long long>(r.scalar.page_reads),
                static_cast<unsigned long long>(r.batched.page_reads));
    parity = CheckParity(r) && parity;
  }
  WriteJson(json_path, rows);
  std::printf("\nresults -> %s\n", json_path.c_str());
  if (!parity) return 1;
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace pbitree

int main() { return pbitree::bench::Run(); }
