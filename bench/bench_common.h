#ifndef PBITREE_BENCH_BENCH_COMMON_H_
#define PBITREE_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/env.h"
#include "framework/runner.h"
#include "join/element_set.h"
#include "storage/buffer_manager.h"
#include "storage/disk_manager.h"

namespace pbitree {
namespace bench {

/// \brief Shared configuration of the experiment drivers.
///
/// Every bench binary reads:
///  - PBITREE_BENCH_SCALE  (default 0.02): multiplies the paper's
///    element counts (L = 10^6 * scale, S = 10^4 * scale). 1.0
///    reproduces the paper's sizes (minutes per table on a laptop).
///  - PBITREE_BENCH_SEED   (default 42).
///  - PBITREE_SIM_IO_MS    (default 1.0): simulated per-page disk
///    latency; reported "time" = wall CPU + latency * page I/O, which
///    reproduces the paper's disk-bound regime machine-independently.
///  - PBITREE_THREADS      (default 1): worker threads for the
///    partition-parallel paths. 1 keeps the paper-faithful serial
///    execution (exact I/O counts); N > 1 measures parallel speedup.
///  - PBITREE_METRICS_JSON (unset by default): path of a JSONL sink —
///    every measured operation appends its full per-operation metrics
///    report (schema-stable; see obs/metrics.h).
///
/// Set knobs are validated: nonsense values (scale <= 0, threads == 0,
/// negative sim_io_ms, unparsable text) abort with the accepted range.
struct BenchConfig {
  double scale = 0.02;
  uint64_t seed = 42;
  double sim_io_ms = 1.0;
  size_t threads = 1;

  static BenchConfig FromEnv();

  /// The paper's default buffer of 500 pages scaled with the data
  /// (same buffer-to-data ratio), floored for usability.
  size_t DefaultBufferPages() const;
};

/// \brief One in-memory-backed database + buffer pool sized to `pages`.
struct Env {
  std::unique_ptr<DiskManager> disk;
  std::unique_ptr<BufferManager> bm;

  explicit Env(size_t pool_pages);
};

/// Runs one algorithm and returns the measured RunResult (counting
/// sink; results are not materialised).
RunResult MustRun(Algorithm alg, BufferManager* bm, const ElementSet& a,
                  const ElementSet& d, const RunOptions& opts);

/// MIN_RGN convenience (aborts on error).
MinRgnResult MustRunMinRgn(BufferManager* bm, const ElementSet& a,
                           const ElementSet& d, const RunOptions& opts);

/// Improvement ratio of the paper's Figure 6: (T_ref - T_alg) / T_ref.
double ImprovementRatio(double t_ref, double t_alg);

/// Fixed-width table-row printing helpers.
void PrintRule(int width);
void PrintCell(const std::string& s, int width);
std::string FormatSeconds(double s);
std::string FormatRatio(double r);

/// Figure 6(e)/(f) driver: elapsed time vs relative buffer size P for
/// one canonical dataset ("SLLL" or "MLLL"). `partitioned` names the
/// PBiTree algorithm to sweep next to MIN_RGN (SHCJ for single-height,
/// MHCJ+Rollup for multi-height) — VPJ always runs as well.
void RunBufferSweep(const std::string& dataset, Algorithm partitioned);

/// Figure 6(g)/(h) driver: elapsed time vs dataset size (k * 5*10^4 *
/// scale elements, k = 1..8) for MIN_RGN, the horizontal-partitioning
/// algorithm and VPJ.
void RunScalabilitySweep(bool multi_height);

}  // namespace bench
}  // namespace pbitree

#endif  // PBITREE_BENCH_BENCH_COMMON_H_
