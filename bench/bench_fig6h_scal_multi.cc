// Reproduces Figure 6(h): scalability on multi-height datasets of
// k * 5*10^4 (scaled) elements, k = 1..8.

#include "bench/bench_common.h"

int main() {
  pbitree::bench::RunScalabilitySweep(/*multi_height=*/true);
  return 0;
}
