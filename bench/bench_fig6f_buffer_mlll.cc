// Reproduces Figure 6(f): elapsed time with varying buffer sizes on the
// multi-height MLLL dataset. See RunBufferSweep for the sweep
// definition.

#include "bench/bench_common.h"
#include "datagen/synthetic.h"

int main() {
  pbitree::bench::RunBufferSweep("MLLL", pbitree::Algorithm::kMhcjRollup);
  return 0;
}
