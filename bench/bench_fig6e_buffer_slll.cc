// Reproduces Figure 6(e): elapsed time with varying buffer sizes on the
// single-height SLLL dataset (P = buffer pages / pages of the smaller
// set). See RunBufferSweep for the sweep definition.

#include "bench/bench_common.h"
#include "datagen/synthetic.h"

int main() {
  pbitree::bench::RunBufferSweep("SLLL", pbitree::Algorithm::kShcj);
  return 0;
}
