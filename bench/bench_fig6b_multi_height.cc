// Reproduces Table 2(b) (multi-height dataset statistics) and Figure
// 6(b): improvement ratio of MHCJ+Rollup and VPJ over MIN_RGN on the
// eight multi-height synthetic datasets.
//
// Paper shape to verify: both partitioning algorithms stay well ahead
// of MIN_RGN (improvement up to ~96%, speedup up to ~30x) even though
// rollup introduces false hits.

#include <cstdio>

#include "bench/bench_common.h"
#include "datagen/synthetic.h"
#include "framework/planner.h"

namespace pbitree {
namespace bench {
namespace {

void Run() {
  BenchConfig cfg = BenchConfig::FromEnv();
  std::printf("=== Table 2(b) / Figure 6(b): multi-height synthetic ===\n");
  std::printf("scale=%g  buffer=%zu pages  sim_io=%.2f ms/page\n\n", cfg.scale,
              cfg.DefaultBufferPages(), cfg.sim_io_ms);

  std::printf("%-8s %4s %4s %10s | %10s %10s %10s | %8s %8s\n", "dataset",
              "H_A", "H_D", "#results", "MIN_RGN", "Rollup", "VPJ", "impRoll",
              "impVPJ");
  PrintRule(96);

  for (const auto& named : CanonicalSyntheticSpecs(cfg.scale, cfg.seed)) {
    if (named.name[0] != 'M') continue;

    Env env(cfg.DefaultBufferPages());
    auto ds = GenerateSynthetic(env.bm.get(), named.spec);
    if (!ds.ok()) {
      std::fprintf(stderr, "generate %s: %s\n", named.name.c_str(),
                   ds.status().ToString().c_str());
      continue;
    }

    RunOptions opts;
    opts.cold_cache = true;
    opts.work_pages = cfg.DefaultBufferPages();
    opts.simulated_io_ms = cfg.sim_io_ms;

    MinRgnResult min_rgn = MustRunMinRgn(env.bm.get(), ds->a, ds->d, opts);
    RunResult rollup =
        MustRun(Algorithm::kMhcjRollup, env.bm.get(), ds->a, ds->d, opts);
    RunResult vpj = MustRun(Algorithm::kVpj, env.bm.get(), ds->a, ds->d, opts);

    double t_min = min_rgn.best().simulated_seconds;
    std::printf(
        "%-8s %4d %4d %10llu | %10s %10s %10s | %8s %8s\n", named.name.c_str(),
        ds->a.NumHeights(), ds->d.NumHeights(),
        static_cast<unsigned long long>(rollup.output_pairs),
        FormatSeconds(t_min).c_str(),
        FormatSeconds(rollup.simulated_seconds).c_str(),
        FormatSeconds(vpj.simulated_seconds).c_str(),
        FormatRatio(ImprovementRatio(t_min, rollup.simulated_seconds)).c_str(),
        FormatRatio(ImprovementRatio(t_min, vpj.simulated_seconds)).c_str());
    if (rollup.output_pairs != vpj.output_pairs ||
        rollup.output_pairs != min_rgn.best().output_pairs) {
      std::fprintf(stderr, "RESULT MISMATCH on %s!\n", named.name.c_str());
    }
  }
  std::printf("\n(paper: improvement up to 96%%, speedup up to 30x)\n");
}

}  // namespace
}  // namespace bench
}  // namespace pbitree

int main() {
  pbitree::bench::Run();
  return 0;
}
