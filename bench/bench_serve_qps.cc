// Multi-client load generator for pbitree_serverd: sweeps the client
// count and reports QPS plus p50/p99 query latency from the obs
// latency histograms (Latency::kServeQuery, recorded client-side
// around each request so the numbers include the wire).
//
// Two modes:
//   - external: PBITREE_SERVE_ADDR=host:port points at a running
//     daemon (what the CI smoke job does). The join tags come from
//     PBITREE_SERVE_TAGS="anc,desc" or default to the first two sets
//     of the server's catalog listing.
//   - self-host (default): builds a synthetic catalog on the in-memory
//     backend, starts a Server on an ephemeral port in-process, and
//     load-generates against it — no setup required.
//
// Extra knobs on top of bench_common.h:
//   PBITREE_BENCH_QUERIES  (default 16): queries per client per point.
//   PBITREE_BENCH_JSON     (default BENCH_serve_qps.json).
//
// Admission rejections (kResourceExhausted) are counted, not retried;
// a rejected request still costs a round trip but completes no join.

#include <chrono>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "common/env.h"
#include "datagen/synthetic.h"
#include "join/result_sink.h"
#include "obs/metrics.h"
#include "serve/client.h"
#include "serve/server.h"
#include "storage/catalog.h"

namespace pbitree {
namespace bench {
namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Point {
  size_t clients = 0;
  uint64_t completed = 0;
  uint64_t rejected = 0;
  uint64_t pairs = 0;
  double seconds = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;

  double Qps() const { return seconds > 0 ? completed / seconds : 0.0; }
};

struct Target {
  std::string host;
  int port = 0;
  std::string a_tag;
  std::string d_tag;
};

[[noreturn]] void Die(const char* what, const Status& st) {
  std::fprintf(stderr, "%s: %s\n", what, st.ToString().c_str());
  std::exit(1);
}

/// One sweep point: `clients` threads, each its own connection, each
/// issuing `queries` joins back-to-back. Latencies bill into `reg`.
Point RunPoint(const Target& t, size_t clients, uint64_t queries,
               obs::MetricRegistry* reg) {
  Point p;
  p.clients = clients;
  std::vector<std::thread> threads;
  std::vector<Point> locals(clients);
  const obs::MetricsSnapshot before = reg->Snapshot();
  const double t0 = NowSeconds();
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      obs::MetricScope scope(reg);
      serve::Client client;
      if (Status st = client.Connect(t.host, t.port); !st.ok()) {
        Die("connect", st);
      }
      for (uint64_t q = 0; q < queries; ++q) {
        obs::LatencyTimer timer(obs::Latency::kServeQuery);
        CountingSink sink;
        auto summary = client.Join(t.a_tag, t.d_tag, "auto", &sink);
        timer.Finish();
        if (!summary.ok()) {
          if (summary.status().code() == StatusCode::kResourceExhausted) {
            ++locals[c].rejected;
            continue;
          }
          Die("join", summary.status());
        }
        ++locals[c].completed;
        locals[c].pairs += summary->pairs;
      }
    });
  }
  for (std::thread& th : threads) th.join();
  p.seconds = NowSeconds() - t0;
  for (const Point& l : locals) {
    p.completed += l.completed;
    p.rejected += l.rejected;
    p.pairs += l.pairs;
  }
  const obs::MetricsSnapshot delta = reg->Snapshot().Delta(before);
  const obs::HistogramStat& hist =
      delta.latencies[static_cast<size_t>(obs::Latency::kServeQuery)];
  p.p50_ms = hist.QuantileUpperBoundNanos(0.50) / 1e6;
  p.p99_ms = hist.QuantileUpperBoundNanos(0.99) / 1e6;
  return p;
}

void WriteJson(const std::string& path, const std::string& mode,
               const std::vector<Point>& points) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"serve_qps\",\n  \"mode\": \"%s\",\n",
               mode.c_str());
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    std::fprintf(f,
                 "    {\"clients\": %zu, \"completed\": %llu, "
                 "\"rejected\": %llu, \"pairs\": %llu, \"seconds\": %.4f, "
                 "\"qps\": %.2f, \"p50_ms\": %.3f, \"p99_ms\": %.3f}%s\n",
                 p.clients, static_cast<unsigned long long>(p.completed),
                 static_cast<unsigned long long>(p.rejected),
                 static_cast<unsigned long long>(p.pairs), p.seconds, p.Qps(),
                 p.p50_ms, p.p99_ms, i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

/// External mode: resolve the join tags from the daemon's catalog when
/// PBITREE_SERVE_TAGS is not set.
Target ExternalTarget(const std::string& addr) {
  Target t;
  if (Status st = serve::ParseHostPort(addr, &t.host, &t.port); !st.ok()) {
    Die("PBITREE_SERVE_ADDR", st);
  }
  if (const char* tags = std::getenv("PBITREE_SERVE_TAGS");
      tags != nullptr && std::string(tags).find(',') != std::string::npos) {
    const std::string spec = tags;
    t.a_tag = spec.substr(0, spec.find(','));
    t.d_tag = spec.substr(spec.find(',') + 1);
    return t;
  }
  serve::Client probe;
  if (Status st = probe.Connect(t.host, t.port); !st.ok()) Die("connect", st);
  auto listing = probe.List();
  if (!listing.ok()) Die("list", listing.status());
  std::vector<std::string> names;
  size_t pos = 0;
  while (pos < listing->size()) {
    size_t nl = listing->find('\n', pos);
    if (nl == std::string::npos) nl = listing->size();
    std::string line = listing->substr(pos, nl - pos);
    pos = nl + 1;
    size_t sp = line.find(' ');
    if (sp != std::string::npos && sp > 0) names.push_back(line.substr(0, sp));
  }
  if (names.size() < 2) {
    std::fprintf(stderr, "server catalog has %zu sets; need 2 to join "
                 "(set PBITREE_SERVE_TAGS=anc,desc)\n", names.size());
    std::exit(1);
  }
  t.a_tag = names[0];
  t.d_tag = names[1];
  return t;
}

int Run() {
  BenchConfig cfg = BenchConfig::FromEnv();
  const uint64_t queries = static_cast<uint64_t>(
      EnvInt64Checked("PBITREE_BENCH_QUERIES", 16, 1, 1 << 20));
  const char* json_env = std::getenv("PBITREE_BENCH_JSON");
  const std::string json_path =
      json_env != nullptr ? json_env : "BENCH_serve_qps.json";
  const char* addr = std::getenv("PBITREE_SERVE_ADDR");
  const std::string mode = addr != nullptr ? "external" : "self-host";

  // Self-host mode keeps these alive for the duration of the sweep.
  std::optional<Env> env;
  std::optional<serve::Server> server;
  Target target;
  if (addr != nullptr) {
    target = ExternalTarget(addr);
  } else {
    env.emplace(cfg.DefaultBufferPages());
    SyntheticSpec spec;
    spec.a_count = static_cast<uint64_t>(1e5 * cfg.scale);
    spec.d_count = static_cast<uint64_t>(1e5 * cfg.scale);
    spec.a_heights = {10};
    spec.d_heights = {2};
    spec.match_fraction = 0.1;
    spec.seed = cfg.seed;
    auto ds = GenerateSynthetic(env->bm.get(), spec);
    if (!ds.ok()) Die("generate", ds.status());
    Catalog catalog;
    if (Status st = catalog.Put("anc", ds->a); !st.ok()) Die("put", st);
    if (Status st = catalog.Put("desc", ds->d); !st.ok()) Die("put", st);
    serve::ServeConfig scfg;
    scfg.port = 0;  // ephemeral
    scfg.max_concurrent = 4;
    scfg.queue_depth = 64;
    scfg.work_pages = cfg.DefaultBufferPages() / 2;
    scfg.threads = cfg.threads;
    server.emplace(env->bm.get(), std::move(catalog), scfg);
    if (Status st = server->Start(); !st.ok()) Die("server start", st);
    target.host = "127.0.0.1";
    target.port = server->port();
    target.a_tag = "anc";
    target.d_tag = "desc";
  }

  std::printf("=== serve QPS sweep (%s %s:%d, join %s//%s, %llu "
              "queries/client) ===\n",
              mode.c_str(), target.host.c_str(), target.port,
              target.a_tag.c_str(), target.d_tag.c_str(),
              static_cast<unsigned long long>(queries));
  std::printf("%8s %10s %10s %10s %10s %10s\n", "clients", "qps", "p50(ms)",
              "p99(ms)", "rejected", "pairs");
  PrintRule(64);

  obs::MetricRegistry reg;
  std::vector<Point> points;
  for (size_t clients : {1u, 2u, 4u}) {
    Point p = RunPoint(target, clients, queries, &reg);
    std::printf("%8zu %10.1f %10.3f %10.3f %10llu %10llu\n", p.clients,
                p.Qps(), p.p50_ms, p.p99_ms,
                static_cast<unsigned long long>(p.rejected),
                static_cast<unsigned long long>(p.pairs));
    points.push_back(p);
  }

  WriteJson(json_path, mode, points);
  std::printf("\nresults -> %s\n", json_path.c_str());

  if (server.has_value()) {
    if (Status st = server->Shutdown(); !st.ok()) Die("shutdown", st);
  }
  if (points.size() >= 3 && points.back().Qps() + 1e-9 < points.front().Qps()) {
    // Report (don't fail): concurrent clients should at least match the
    // single-client rate on a warm server.
    std::printf("note: 4-client QPS (%.1f) below 1-client QPS (%.1f)\n",
                points.back().Qps(), points.front().Qps());
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace pbitree

int main() { return pbitree::bench::Run(); }
