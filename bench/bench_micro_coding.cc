// Micro-benchmarks for the Section 2.3 discussion: the PBiTree coding
// primitives are a handful of shift/add instructions, so computing
// region codes on the fly (the adaptation of the region-based
// algorithms) costs next to nothing — the paper's justification for
// "the two classes of algorithms have almost the same performance".

#include <benchmark/benchmark.h>

#include <vector>

#include "common/random.h"
#include "pbitree/code.h"

namespace pbitree {
namespace {

std::vector<Code> MakeCodes(size_t n) {
  Random rng(1234);
  PBiTreeSpec spec{40};
  std::vector<Code> out(n);
  for (auto& c : out) c = rng.UniformRange(1, spec.MaxCode());
  return out;
}

void BM_HeightOf(benchmark::State& state) {
  auto codes = MakeCodes(4096);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(HeightOf(codes[i++ & 4095]));
  }
}
BENCHMARK(BM_HeightOf);

void BM_AncestorAtHeight(benchmark::State& state) {
  auto codes = MakeCodes(4096);
  size_t i = 0;
  for (auto _ : state) {
    Code c = codes[i++ & 4095];
    benchmark::DoNotOptimize(AncestorAtHeight(c, 20));
  }
}
BENCHMARK(BM_AncestorAtHeight);

void BM_IsAncestor(benchmark::State& state) {
  auto codes = MakeCodes(4096);
  size_t i = 0;
  for (auto _ : state) {
    Code a = codes[i & 4095];
    Code d = codes[(i + 1) & 4095];
    ++i;
    benchmark::DoNotOptimize(IsAncestor(a, d));
  }
}
BENCHMARK(BM_IsAncestor);

void BM_RegionConversion(benchmark::State& state) {
  auto codes = MakeCodes(4096);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ToRegion(codes[i++ & 4095]));
  }
}
BENCHMARK(BM_RegionConversion);

void BM_RegionContainmentCheck(benchmark::State& state) {
  // The adapted region algorithms' hot path: convert + compare.
  auto codes = MakeCodes(4096);
  size_t i = 0;
  for (auto _ : state) {
    Region ra = ToRegion(codes[i & 4095]);
    Region rd = ToRegion(codes[(i + 1) & 4095]);
    ++i;
    benchmark::DoNotOptimize(ra.Contains(rd));
  }
}
BENCHMARK(BM_RegionContainmentCheck);

void BM_PrefixConversion(benchmark::State& state) {
  auto codes = MakeCodes(4096);
  PBiTreeSpec spec{40};
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ToPrefix(codes[i++ & 4095], spec));
  }
}
BENCHMARK(BM_PrefixConversion);

void BM_TopDownCode(benchmark::State& state) {
  PBiTreeSpec spec{40};
  Random rng(5);
  std::vector<uint64_t> alphas(4096);
  for (auto& a : alphas) a = rng.Uniform(1 << 20);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(CodeOfTopDown(alphas[i++ & 4095], 20, spec));
  }
}
BENCHMARK(BM_TopDownCode);

}  // namespace
}  // namespace pbitree

BENCHMARK_MAIN();
