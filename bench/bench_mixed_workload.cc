// Mixed read/write workload against the mutable serving layer: sweeps
// the update rate (0%, 1%, 10% of operations are committed inserts or
// deletes) and reports join QPS, cache hit rate and query latency for
// each point — the cost of epoch churn on the epoch-keyed result
// cache. At 0% every repeat query after the first is a cache hit; as
// the update rate grows, each commit bumps the epoch and invalidates,
// so the hit rate decays and joins pay the full execution again.
//
// Self-hosted: builds a synthetic catalog on the in-memory backend,
// saves it, opens an ElementSetStore over the same pool, attaches it
// to an in-process Server and drives the workload over the wire.
//
// Correctness gate (aborts on violation): within one snapshot epoch,
// every join reply must report exactly the same pair count — a cache
// hit must be indistinguishable from the uncached execution it
// memoised.
//
// Extra knobs on top of bench_common.h:
//   PBITREE_BENCH_OPS   (default 240): operations per sweep point.
//   PBITREE_BENCH_JSON  (default BENCH_mixed_workload.json).

#include <chrono>
#include <cstdio>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/env.h"
#include "common/random.h"
#include "datagen/synthetic.h"
#include "join/result_sink.h"
#include "obs/metrics.h"
#include "serve/client.h"
#include "serve/server.h"
#include "storage/catalog.h"
#include "storage/element_store.h"

namespace pbitree {
namespace bench {
namespace {

[[noreturn]] void Die(const char* what, const Status& st) {
  std::fprintf(stderr, "%s: %s\n", what, st.ToString().c_str());
  std::exit(1);
}

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Point {
  int update_permille = 0;
  uint64_t joins = 0;
  uint64_t updates = 0;
  uint64_t slack_exhausted = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  double seconds = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;

  double JoinQps() const { return seconds > 0 ? joins / seconds : 0.0; }
  double HitRate() const {
    uint64_t lookups = cache_hits + cache_misses;
    return lookups > 0 ? static_cast<double>(cache_hits) / lookups : 0.0;
  }
};

/// One sweep point: `ops` operations, `update_permille`/1000 of them
/// mutations (alternating inserts under the ancestor root and deletes
/// of previously inserted elements, so the set size stays bounded).
Point RunPoint(serve::Server* server, int port, Code insert_parent,
               int update_permille, uint64_t ops, uint64_t seed,
               obs::MetricRegistry* reg) {
  Point p;
  p.update_permille = update_permille;

  serve::Client client;
  if (Status st = client.Connect("127.0.0.1", port); !st.ok()) {
    Die("connect", st);
  }

  // The parity ledger: pair count every join at each epoch reported.
  auto epoch = client.Epoch();
  if (!epoch.ok()) Die("epoch", epoch.status());
  uint64_t cur_epoch = *epoch;
  std::map<uint64_t, uint64_t> pairs_at_epoch;

  Random rng(seed);
  std::deque<Code> inserted;
  const obs::MetricsSnapshot before = server->registry()->Snapshot();
  const obs::MetricsSnapshot lat_before = reg->Snapshot();
  obs::MetricScope scope(reg);
  const double t0 = NowSeconds();
  for (uint64_t i = 0; i < ops; ++i) {
    const bool update = rng.Uniform(1000) < static_cast<uint64_t>(update_permille);
    if (update) {
      if (inserted.size() >= 8 || (!inserted.empty() && rng.Uniform(2) == 0)) {
        auto res = client.DeleteElement("desc", inserted.front());
        if (!res.ok()) Die("delete", res.status());
        inserted.pop_front();
        cur_epoch = res->epoch;
      } else {
        auto res = client.InsertChild("desc", insert_parent, 0,
                                      90000 + static_cast<uint32_t>(i));
        if (res.ok()) {
          inserted.push_back(res->code);
          cur_epoch = res->epoch;
        } else if (res.status().IsSlackExhausted()) {
          ++p.slack_exhausted;  // subtree packed; workload carries on
        } else {
          Die("insert", res.status());
        }
      }
      ++p.updates;
      continue;
    }
    obs::LatencyTimer timer(obs::Latency::kServeQuery);
    CountingSink sink;
    auto summary = client.Join("anc", "desc", "auto", &sink);
    timer.Finish();
    if (!summary.ok()) Die("join", summary.status());
    ++p.joins;
    auto [it, first] = pairs_at_epoch.emplace(cur_epoch, summary->pairs);
    if (!first && it->second != summary->pairs) {
      std::fprintf(stderr,
                   "cache parity violation at epoch %llu: %llu pairs vs "
                   "%llu earlier\n",
                   static_cast<unsigned long long>(cur_epoch),
                   static_cast<unsigned long long>(summary->pairs),
                   static_cast<unsigned long long>(it->second));
      std::exit(1);
    }
  }
  p.seconds = NowSeconds() - t0;

  const obs::MetricsSnapshot sdelta = server->registry()->Snapshot().Delta(before);
  p.cache_hits = sdelta.counter(obs::Counter::kServeCacheHits);
  p.cache_misses = sdelta.counter(obs::Counter::kServeCacheMisses);
  const obs::MetricsSnapshot ldelta = reg->Snapshot().Delta(lat_before);
  const obs::HistogramStat& hist =
      ldelta.latencies[static_cast<size_t>(obs::Latency::kServeQuery)];
  p.p50_ms = hist.QuantileUpperBoundNanos(0.50) / 1e6;
  p.p99_ms = hist.QuantileUpperBoundNanos(0.99) / 1e6;

  // Leave the store as we found it so the next point starts clean.
  while (!inserted.empty()) {
    auto res = client.DeleteElement("desc", inserted.front());
    if (!res.ok()) Die("cleanup delete", res.status());
    inserted.pop_front();
  }
  return p;
}

void WriteJson(const std::string& path, const std::vector<Point>& points) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"mixed_workload\",\n  \"results\": [\n");
  for (size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    std::fprintf(
        f,
        "    {\"update_permille\": %d, \"joins\": %llu, \"updates\": %llu, "
        "\"slack_exhausted\": %llu, \"join_qps\": %.2f, \"cache_hits\": %llu, "
        "\"cache_misses\": %llu, \"hit_rate\": %.4f, \"seconds\": %.4f, "
        "\"p50_ms\": %.3f, \"p99_ms\": %.3f}%s\n",
        p.update_permille, static_cast<unsigned long long>(p.joins),
        static_cast<unsigned long long>(p.updates),
        static_cast<unsigned long long>(p.slack_exhausted), p.JoinQps(),
        static_cast<unsigned long long>(p.cache_hits),
        static_cast<unsigned long long>(p.cache_misses), p.HitRate(),
        p.seconds, p.p50_ms, p.p99_ms, i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

int Run() {
  BenchConfig cfg = BenchConfig::FromEnv();
  const uint64_t ops = static_cast<uint64_t>(
      EnvInt64Checked("PBITREE_BENCH_OPS", 240, 1, 1 << 20));
  const char* json_env = std::getenv("PBITREE_BENCH_JSON");
  const std::string json_path =
      json_env != nullptr ? json_env : "BENCH_mixed_workload.json";

  Env env(cfg.DefaultBufferPages());
  SyntheticSpec spec;
  spec.a_count = static_cast<uint64_t>(5e4 * cfg.scale);
  spec.d_count = static_cast<uint64_t>(5e4 * cfg.scale);
  spec.a_heights = {10};
  spec.d_heights = {2};
  spec.match_fraction = 0.1;
  spec.seed = cfg.seed;
  auto ds = GenerateSynthetic(env.bm.get(), spec);
  if (!ds.ok()) Die("generate", ds.status());

  // The mutable path reads its sets through the store, so the catalog
  // must be durable before the store opens.
  auto catalog = Catalog::Load(env.bm.get());
  if (!catalog.ok()) Die("catalog", catalog.status());
  if (Status st = catalog->Put("anc", ds->a); !st.ok()) Die("put", st);
  if (Status st = catalog->Put("desc", ds->d); !st.ok()) Die("put", st);
  if (Status st = catalog->Save(env.bm.get()); !st.ok()) Die("save", st);

  auto estore = ElementSetStore::Open(env.bm.get());
  if (!estore.ok()) Die("element store", estore.status());

  serve::ServeConfig scfg;
  scfg.port = 0;  // ephemeral
  scfg.max_concurrent = 2;
  scfg.queue_depth = 32;
  scfg.work_pages = cfg.DefaultBufferPages() / 2;
  scfg.threads = cfg.threads;
  serve::Server server(env.bm.get(), *catalog, scfg);
  server.AttachElementStore(estore->get());
  if (Status st = server.Start(); !st.ok()) Die("server start", st);

  // New elements go under the ancestor root so every insert changes
  // the join result (worst case for the cache).
  const Code insert_parent = ds->a.spec.RootCode();

  std::printf("=== mixed workload sweep (%llu ops/point, %llu+%llu elements) "
              "===\n",
              static_cast<unsigned long long>(ops),
              static_cast<unsigned long long>(spec.a_count),
              static_cast<unsigned long long>(spec.d_count));
  std::printf("%10s %10s %10s %10s %10s %10s %10s\n", "upd/1000", "join_qps",
              "hit_rate", "hits", "misses", "p50(ms)", "p99(ms)");
  PrintRule(76);

  obs::MetricRegistry reg;
  std::vector<Point> points;
  for (int permille : {0, 10, 100}) {
    Point p = RunPoint(&server, server.port(), insert_parent, permille, ops,
                       cfg.seed + static_cast<uint64_t>(permille), &reg);
    std::printf("%10d %10.1f %10.3f %10llu %10llu %10.3f %10.3f\n",
                p.update_permille, p.JoinQps(), p.HitRate(),
                static_cast<unsigned long long>(p.cache_hits),
                static_cast<unsigned long long>(p.cache_misses), p.p50_ms,
                p.p99_ms);
    points.push_back(p);
  }

  WriteJson(json_path, points);
  std::printf("\nresults -> %s\n", json_path.c_str());

  if (Status st = server.Shutdown(); !st.ok()) Die("shutdown", st);

  // Sanity gates: the read-only point must be cache-dominated, and
  // updates must actually have invalidated.
  const Point& readonly = points.front();
  if (readonly.cache_hits == 0) {
    std::fprintf(stderr, "read-only point recorded no cache hits\n");
    return 1;
  }
  if (points.back().cache_misses <= readonly.cache_misses) {
    std::fprintf(stderr, "update churn did not increase cache misses\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace pbitree

int main() { return pbitree::bench::Run(); }
