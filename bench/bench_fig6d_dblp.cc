// Reproduces Table 2(d) and Figure 6(d): the ten DBLP containment joins
// D1-D10 — dataset statistics and the improvement ratio of MHCJ+Rollup
// and VPJ over MIN_RGN.
//
// Paper shape to verify: consistently positive improvement (up to ~96%)
// on the shallow-but-wide bibliography data, where the ancestor sets
// are large single-height record sets.

#include <algorithm>
#include <cstdio>

#include "bench/bench_common.h"
#include "datagen/dblp_gen.h"
#include "framework/planner.h"
#include "pbitree/binarize.h"

namespace pbitree {
namespace bench {
namespace {

void Run() {
  BenchConfig cfg = BenchConfig::FromEnv();
  // The 2002 DBLP dump held ~300k records; like the XMark bench, the
  // join inputs are fractions of the document, so scale the document
  // up (capped at the real dump's size).
  double doc_scale = cfg.scale * 25;
  if (doc_scale > 1.0) doc_scale = 1.0;
  if (doc_scale < 0.1) doc_scale = 0.1;
  auto pubs = static_cast<uint64_t>(300000 * doc_scale);
  // Keep the paper's buffer-to-data ratio: 500 Minibase pages per full
  // dump, divided by 4 for our denser 16-byte element records.
  size_t buffer_pages = std::max<size_t>(16, static_cast<size_t>(125 * doc_scale));
  std::printf("=== Table 2(d) / Figure 6(d): DBLP joins ===\n");
  std::printf("publications=%llu  buffer=%zu pages  sim_io=%.2f ms/page\n\n",
              static_cast<unsigned long long>(pubs), buffer_pages,
              cfg.sim_io_ms);

  DataTree tree;
  DblpOptions gen;
  gen.num_publications = pubs;
  gen.seed = cfg.seed;
  if (Status st = GenerateDblp(&tree, gen); !st.ok()) {
    std::fprintf(stderr, "dblp generation failed: %s\n", st.ToString().c_str());
    return;
  }
  PBiTreeSpec spec;
  if (Status st = BinarizeTree(&tree, &spec); !st.ok()) {
    std::fprintf(stderr, "binarize failed: %s\n", st.ToString().c_str());
    return;
  }
  std::printf("document: %zu elements, PBiTree height %d\n\n", tree.size(),
              spec.height);

  std::printf("%-4s %-28s %9s %9s %9s | %9s %9s %9s | %8s %8s\n", "id",
              "join (anc // desc)", "|A|", "|D|", "#results", "MIN_RGN",
              "Rollup", "VPJ", "impRoll", "impVPJ");
  PrintRule(122);

  Env env(buffer_pages);
  for (const TagJoinSpec& join : DblpJoins()) {
    auto a = ExtractTagSetByName(env.bm.get(), tree, spec, join.ancestor_tag);
    auto d = ExtractTagSetByName(env.bm.get(), tree, spec, join.descendant_tag);
    if (!a.ok() || !d.ok()) {
      std::printf("%-4s skipped (tag missing at this scale)\n", join.name.c_str());
      continue;
    }

    RunOptions opts;
    opts.cold_cache = true;
    opts.work_pages = buffer_pages;
    opts.simulated_io_ms = cfg.sim_io_ms;

    MinRgnResult min_rgn = MustRunMinRgn(env.bm.get(), *a, *d, opts);
    RunResult rollup =
        MustRun(Algorithm::kMhcjRollup, env.bm.get(), *a, *d, opts);
    RunResult vpj = MustRun(Algorithm::kVpj, env.bm.get(), *a, *d, opts);

    double t_min = min_rgn.best().simulated_seconds;
    std::string label = join.ancestor_tag + std::string(" // ") + join.descendant_tag;
    std::printf(
        "%-4s %-28s %9llu %9llu %9llu | %9s %9s %9s | %8s %8s\n",
        join.name.c_str(), label.c_str(),
        static_cast<unsigned long long>(a->num_records()),
        static_cast<unsigned long long>(d->num_records()),
        static_cast<unsigned long long>(rollup.output_pairs),
        FormatSeconds(t_min).c_str(),
        FormatSeconds(rollup.simulated_seconds).c_str(),
        FormatSeconds(vpj.simulated_seconds).c_str(),
        FormatRatio(ImprovementRatio(t_min, rollup.simulated_seconds)).c_str(),
        FormatRatio(ImprovementRatio(t_min, vpj.simulated_seconds)).c_str());
    if (rollup.output_pairs != vpj.output_pairs ||
        rollup.output_pairs != min_rgn.best().output_pairs) {
      std::fprintf(stderr, "RESULT MISMATCH on %s!\n", join.name.c_str());
    }
    a->file.Drop(env.bm.get());
    d->file.Drop(env.bm.get());
  }
  std::printf("\n(paper: improvement up to 96%%, speedup up to 25x)\n");
}

}  // namespace
}  // namespace bench
}  // namespace pbitree

int main() {
  pbitree::bench::Run();
  return 0;
}
