// Measures how much of the disk wait the async I/O path hides on the
// two scan-bound workloads, under *real* injected latency
// (LatencyInjectingBackend sleeps inside every transfer, unlike the
// post-hoc simulated_io_ms arithmetic):
//
//   scan       full-file scan (sum of codes) — the Scanner readahead
//              window is the only machinery in play.
//   stacktree  STACKTREE via RunJoin over presorted inputs — the
//              scan-bound join of the acceptance criteria: two merged
//              forward scans, each data page read exactly once per
//              cold rep, so page-read parity is structural. (The
//              setup sorts exercise write-behind, unmeasured; the
//              sort+readahead interaction is covered by the
//              differential suite.)
//
// Each workload runs from a cold pool with readahead off (the seed's
// synchronous behaviour) and with a readahead window, comparing wall
// time, io-wait (obs::Latency::kIoWait) and disk page reads. Results
// and page-read counts must match exactly — readahead moves *when*
// pages are read, never *whether* — and the bench exits nonzero on any
// mismatch, so CI uses it as the sync-vs-async parity assertion.
//
// Extra knobs on top of bench_common.h (PBITREE_SIM_IO_MS doubles as
// the injected per-page latency here):
//   PBITREE_BENCH_REPS       (default 3): timed repetitions; best wins.
//   PBITREE_BENCH_READAHEAD  (default 8): the readahead window to test.
//   PBITREE_BENCH_MIN_IOWAIT_RATIO (default 0 = off): exit nonzero
//                            unless every workload's io-wait shrinks by
//                            at least this factor — CI sets 2.0.
//   PBITREE_BENCH_JSON       (default BENCH_async_io.json).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/env.h"
#include "datagen/synthetic.h"
#include "framework/runner.h"
#include "join/result_sink.h"
#include "obs/metrics.h"
#include "sort/external_sort.h"
#include "storage/async_io.h"
#include "storage/buffer_manager.h"
#include "storage/disk_manager.h"
#include "storage/io_backend.h"

namespace pbitree {
namespace bench {
namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Measured {
  double best_seconds = 1e300;
  double io_wait_seconds = 0.0;  // of the best rep
  uint64_t page_reads = 0;       // cold-pool disk reads (identical per rep)
  uint64_t check = 0;            // workload-defined result checksum
};

struct Row {
  std::string workload;
  Measured sync;       // readahead off
  Measured readahead;  // readahead on
  double Speedup() const { return sync.best_seconds / readahead.best_seconds; }
  double IoWaitReduction() const {
    return readahead.io_wait_seconds == 0.0
               ? 1e300
               : sync.io_wait_seconds / readahead.io_wait_seconds;
  }
};

/// A latency-injected in-memory database: every page transfer of the
/// MemIoBackend sleeps `io_us` microseconds, so overlap machinery shows
/// up as genuinely reduced io-wait.
struct SlowEnv {
  std::unique_ptr<DiskManager> disk;
  std::unique_ptr<BufferManager> bm;

  SlowEnv(size_t pool_pages, uint32_t io_us) {
    auto backend = std::make_unique<LatencyInjectingBackend>(
        std::make_unique<MemIoBackend>(), io_us, io_us);
    auto dm = DiskManager::OpenWithBackend(std::move(backend),
                                           /*restore_frontier=*/false);
    if (!dm.ok()) {
      std::fprintf(stderr, "open: %s\n", dm.status().ToString().c_str());
      std::exit(1);
    }
    disk.reset(*dm);
    bm = std::make_unique<BufferManager>(disk.get(), pool_pages);
  }
};

/// Runs `body` `reps` times from a cold pool under its own metric
/// registry, keeping the best wall time with its io-wait.
template <typename Body>
Measured TimeColdRuns(SlowEnv* env, int reps, size_t readahead, Body&& body) {
  Measured m;
  for (int r = 0; r < reps; ++r) {
    env->bm->set_readahead_pages(readahead);
    if (Status st = env->bm->PurgeAll(); !st.ok()) {
      std::fprintf(stderr, "PurgeAll: %s\n", st.ToString().c_str());
      std::exit(1);
    }
    uint64_t reads_before = env->disk->stats().page_reads;
    obs::MetricRegistry reg;
    double t0 = NowSeconds();
    uint64_t check;
    {
      obs::MetricScope scope(&reg);
      check = body();
      env->bm->DrainAsyncIo();
    }
    double dt = NowSeconds() - t0;
    m.check = check;
    m.page_reads = env->disk->stats().page_reads - reads_before;
    if (dt < m.best_seconds) {
      m.best_seconds = dt;
      m.io_wait_seconds =
          static_cast<double>(
              reg.Snapshot().latencies[static_cast<size_t>(
                  obs::Latency::kIoWait)].total_nanos) * 1e-9;
    }
  }
  return m;
}

uint64_t ScanAll(SlowEnv* env, const HeapFile& file) {
  HeapFile::Scanner scan(env->bm.get(), file);
  uint64_t sum = 0;
  for (auto batch = scan.NextElementBatch(); !batch.empty();
       batch = scan.NextElementBatch()) {
    for (const ElementRecord& rec : batch) sum += rec.code;
  }
  if (!scan.status().ok()) {
    std::fprintf(stderr, "scan: %s\n", scan.status().ToString().c_str());
    std::exit(1);
  }
  return sum;
}

ElementSet SortedByStart(SlowEnv* env, const ElementSet& s, size_t work) {
  auto sorted =
      ExternalSort(env->bm.get(), s.file, work, SortOrder::kStartOrder);
  if (!sorted.ok()) {
    std::fprintf(stderr, "sort: %s\n", sorted.status().ToString().c_str());
    std::exit(1);
  }
  ElementSet out = s;
  out.file = *sorted;
  out.sorted_by_start = true;
  return out;
}

uint64_t StackTreeRun(SlowEnv* env, const ElementSet& a, const ElementSet& d,
                      size_t work_pages, size_t readahead) {
  RunOptions opts;
  opts.work_pages = work_pages;
  opts.readahead_pages = readahead;
  CountingSink sink;
  auto res =
      RunJoin(Algorithm::kStackTree, env->bm.get(), a, d, &sink, opts);
  if (!res.ok()) {
    std::fprintf(stderr, "StackTree: %s\n", res.status().ToString().c_str());
    std::exit(1);
  }
  return res->output_pairs;
}

bool CheckParity(const Row& row) {
  bool ok = true;
  if (row.sync.check != row.readahead.check) {
    std::fprintf(stderr,
                 "PARITY FAILURE [%s]: result %llu sync vs %llu readahead\n",
                 row.workload.c_str(),
                 static_cast<unsigned long long>(row.sync.check),
                 static_cast<unsigned long long>(row.readahead.check));
    ok = false;
  }
  if (row.sync.page_reads != row.readahead.page_reads) {
    std::fprintf(
        stderr, "PARITY FAILURE [%s]: page reads %llu sync vs %llu readahead\n",
        row.workload.c_str(),
        static_cast<unsigned long long>(row.sync.page_reads),
        static_cast<unsigned long long>(row.readahead.page_reads));
    ok = false;
  }
  return ok;
}

void WriteJson(const std::string& path, size_t window, double io_us,
               const std::vector<Row>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f,
               "{\n  \"bench\": \"async_io\",\n  \"readahead_pages\": %zu,\n"
               "  \"injected_page_latency_us\": %.1f,\n  \"results\": [\n",
               window, io_us);
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"workload\": \"%s\", \"sync_ms\": %.3f, "
                 "\"readahead_ms\": %.3f, \"speedup\": %.3f, "
                 "\"io_wait_sync_ms\": %.3f, \"io_wait_readahead_ms\": %.3f, "
                 "\"io_wait_reduction\": %.3f, "
                 "\"page_reads_sync\": %llu, \"page_reads_readahead\": %llu}%s\n",
                 r.workload.c_str(), r.sync.best_seconds * 1e3,
                 r.readahead.best_seconds * 1e3, r.Speedup(),
                 r.sync.io_wait_seconds * 1e3,
                 r.readahead.io_wait_seconds * 1e3, r.IoWaitReduction(),
                 static_cast<unsigned long long>(r.sync.page_reads),
                 static_cast<unsigned long long>(r.readahead.page_reads),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

int Run() {
  BenchConfig cfg = BenchConfig::FromEnv();
  const int reps =
      static_cast<int>(EnvInt64Checked("PBITREE_BENCH_REPS", 3, 1, 1000));
  const size_t window = static_cast<size_t>(
      EnvInt64Checked("PBITREE_BENCH_READAHEAD", 8, 1, 4096));
  const double min_ratio =
      EnvDoubleChecked("PBITREE_BENCH_MIN_IOWAIT_RATIO", 0.0, 0.0, 1e6);
  const char* json_env = std::getenv("PBITREE_BENCH_JSON");
  const std::string json_path =
      json_env != nullptr ? json_env : "BENCH_async_io.json";
  // PBITREE_SIM_IO_MS doubles as the *injected* per-page latency here.
  const uint32_t io_us = static_cast<uint32_t>(cfg.sim_io_ms * 1000.0);

  std::printf("=== sync vs readahead under %.1f us/page injected latency ===\n",
              static_cast<double>(io_us));
  std::printf("scale=%g  buffer=%zu pages  window=%zu  reps=%d\n\n", cfg.scale,
              cfg.DefaultBufferPages(), window, reps);

  // The scan-bound regime (see bench_batch_throughput.cc): large
  // single-height sets, low selectivity — cost is dominated by moving
  // pages, which is exactly what readahead overlaps.
  SyntheticSpec spec;
  spec.a_count = static_cast<uint64_t>(1e6 * cfg.scale);
  spec.d_count = static_cast<uint64_t>(1e6 * cfg.scale);
  spec.a_heights = {10};
  spec.d_heights = {2};
  spec.match_fraction = 0.05;
  spec.seed = cfg.seed;

  // The algorithms get the paper's scaled buffer as work_pages; the
  // pool carries extra frames for the readahead window but stays small
  // against the data, so every cold rep pays the full scan I/O (the
  // regime readahead targets). Both measured workloads are forward
  // scans over presorted files — each page read exactly once per rep
  // at any pool size, so CheckParity's byte-identical assertion cannot
  // be perturbed by replacement-order divergence (see the parity
  // envelope discussion in docs/ARCHITECTURE.md).
  const size_t work = cfg.DefaultBufferPages();
  const size_t pool = static_cast<size_t>(EnvInt64Checked(
      "PBITREE_BENCH_POOL_PAGES",
      static_cast<int64_t>(std::max<size_t>(64, work + 2 * window + 8)), 8,
      1 << 20));
  SlowEnv env(pool, io_us);
  env.bm->set_readahead_pages(0);  // build the dataset synchronously
  auto ds = GenerateSynthetic(env.bm.get(), spec);
  if (!ds.ok()) {
    std::fprintf(stderr, "generate: %s\n", ds.status().ToString().c_str());
    return 1;
  }
  ElementSet a_sorted = SortedByStart(&env, ds->a, work);
  ElementSet d_sorted = SortedByStart(&env, ds->d, work);

  std::vector<Row> rows;
  {
    Row row;
    row.workload = "scan";
    row.sync = TimeColdRuns(&env, reps, /*readahead=*/0,
                            [&] { return ScanAll(&env, ds->a.file); });
    row.readahead = TimeColdRuns(&env, reps, window,
                                 [&] { return ScanAll(&env, ds->a.file); });
    rows.push_back(row);
  }
  {
    Row row;
    row.workload = "stacktree";
    row.sync = TimeColdRuns(&env, reps, /*readahead=*/0, [&] {
      return StackTreeRun(&env, a_sorted, d_sorted, work, 0);
    });
    row.readahead = TimeColdRuns(&env, reps, window, [&] {
      return StackTreeRun(&env, a_sorted, d_sorted, work, window);
    });
    rows.push_back(row);
  }

  std::printf("%-10s %10s %10s %8s %11s %11s %8s %9s %9s\n", "workload",
              "sync", "rdahead", "speedup", "iowait(s)", "iowait(r)", "iow-x",
              "reads(s)", "reads(r)");
  PrintRule(96);
  bool ok = true;
  for (const Row& r : rows) {
    std::printf("%-10s %10s %10s %7.2fx %11s %11s %7.2fx %9llu %9llu\n",
                r.workload.c_str(), FormatSeconds(r.sync.best_seconds).c_str(),
                FormatSeconds(r.readahead.best_seconds).c_str(), r.Speedup(),
                FormatSeconds(r.sync.io_wait_seconds).c_str(),
                FormatSeconds(r.readahead.io_wait_seconds).c_str(),
                r.IoWaitReduction(),
                static_cast<unsigned long long>(r.sync.page_reads),
                static_cast<unsigned long long>(r.readahead.page_reads));
    ok = CheckParity(r) && ok;
    if (min_ratio > 0.0 && r.IoWaitReduction() < min_ratio) {
      std::fprintf(stderr,
                   "IO-WAIT FAILURE [%s]: reduction %.2fx below required %.2fx\n",
                   r.workload.c_str(), r.IoWaitReduction(), min_ratio);
      ok = false;
    }
  }
  WriteJson(json_path, window, static_cast<double>(io_us), rows);
  std::printf("\nresults -> %s\n", json_path.c_str());
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace pbitree

int main() { return pbitree::bench::Run(); }
