// Ablation for the paper's footnote b of Table 1: "XR-stack has been
// shown to outperform Anc_Des_B+ algorithm in [8]".
//
// With all access paths prebuilt (sorted inputs, Start B+-trees for
// ADB+, XR-trees for XR-stack), sweep the join selectivity: as matches
// get sparser, skipping matters more. Expected shape: STACKTREE's cost
// is flat (always scans everything); ADB+ skips descendants but reads
// ancestor runs; XR-stack skips both sides via the stab lists and wins
// at low selectivity.

#include <algorithm>
#include <cstdio>
#include <unordered_set>
#include <vector>

#include "bench/bench_common.h"
#include "common/random.h"
#include "index/bptree.h"
#include "index/xrtree.h"
#include "join/adb.h"
#include "join/stack_tree.h"
#include "join/xr_stack.h"
#include "sort/external_sort.h"

namespace pbitree {
namespace bench {
namespace {

constexpr int kTreeHeight = 30;

/// Clustered ancestor set + descendants of which only `match_permille`
/// per-thousand live under an ancestor cluster.
void MakeWorkload(Random* rng, uint64_t n_a, uint64_t n_d, int match_permille,
                  std::vector<Code>* a, std::vector<Code>* d) {
  PBiTreeSpec spec{kTreeHeight};
  std::unordered_set<Code> seen;
  a->clear();
  d->clear();
  // 8 ancestor clusters at level 6.
  std::vector<CodeInterval> clusters;
  for (int i = 0; i < 8; ++i) {
    clusters.push_back(SubtreeInterval(CodeOfTopDown(i * 7 + 3, 6, spec)));
  }
  while (a->size() < n_a) {
    const CodeInterval& iv = clusters[rng->Uniform(clusters.size())];
    Code c = iv.lo + rng->Uniform(iv.hi - iv.lo + 1);
    if (HeightOf(c) >= 4 && HeightOf(c) <= 16 && seen.insert(c).second) {
      a->push_back(c);
    }
  }
  while (d->size() < n_d) {
    Code c;
    if (rng->Uniform(1000) < static_cast<uint64_t>(match_permille)) {
      Code anc = (*a)[rng->Uniform(a->size())];
      CodeInterval iv = SubtreeInterval(anc);
      c = iv.lo + rng->Uniform(iv.hi - iv.lo + 1);
    } else {
      c = rng->UniformRange(1, spec.MaxCode());
    }
    if (HeightOf(c) <= 2 && seen.insert(c).second) d->push_back(c);
  }
}

void Run() {
  BenchConfig cfg = BenchConfig::FromEnv();
  std::printf("=== Ablation (Table 1 footnote): XR-stack vs ADB+ vs STACKTREE ===\n");
  std::printf("prebuilt indexes; cost = page I/O of the join only\n\n");

  const auto n = static_cast<uint64_t>(2000000 * cfg.scale);
  std::printf("%10s | %12s %12s %12s | %10s %10s\n", "matches/1k",
              "IO(STACK)", "IO(ADB+)", "IO(XRstack)", "skipsADB", "skipsXR");
  PrintRule(78);

  for (int permille : {500, 100, 20, 4, 0}) {
    Env env(256);
    Random rng(cfg.seed + permille);
    std::vector<Code> a_codes, d_codes;
    MakeWorkload(&rng, n / 4, n, permille, &a_codes, &d_codes);

    auto make_set = [&](const std::vector<Code>& codes) {
      auto b = ElementSetBuilder::Create(env.bm.get(), PBiTreeSpec{kTreeHeight});
      for (Code c : codes) b->AddCode(c);
      return b->Build();
    };
    ElementSet a = make_set(a_codes), d = make_set(d_codes);

    // Prebuild every access path outside the measured window.
    auto a_sorted = ExternalSort(env.bm.get(), a.file, 128, SortOrder::kStartOrder);
    auto d_sorted = ExternalSort(env.bm.get(), d.file, 128, SortOrder::kStartOrder);
    if (!a_sorted.ok() || !d_sorted.ok()) return;
    ElementSet sa = a, sd = d;
    sa.file = *a_sorted;
    sa.sorted_by_start = true;
    sd.file = *d_sorted;
    sd.sorted_by_start = true;
    auto a_bpt = BPTree::BulkLoad(env.bm.get(), *a_sorted, KeyKind::kStart);
    auto d_bpt = BPTree::BulkLoad(env.bm.get(), *d_sorted, KeyKind::kStart);
    auto a_xr = XRTree::BulkLoad(env.bm.get(), *a_sorted);
    auto d_xr = XRTree::BulkLoad(env.bm.get(), *d_sorted);
    if (!a_bpt.ok() || !d_bpt.ok() || !a_xr.ok() || !d_xr.ok()) return;

    auto measure = [&](auto&& fn) -> std::pair<uint64_t, uint64_t> {
      env.bm->PurgeAll();
      DiskStats before = env.disk->stats();
      JoinContext ctx(env.bm.get(), 128);
      CountingSink sink;
      Status st = fn(&ctx, &sink);
      env.bm->FlushAll();
      if (!st.ok()) {
        std::fprintf(stderr, "join failed: %s\n", st.ToString().c_str());
        std::abort();
      }
      DiskStats after = env.disk->stats();
      return {after.TotalIO() - before.TotalIO(), ctx.stats.index_probes};
    };

    uint64_t pairs_expected = 0;
    auto [io_stack, _s] = measure([&](JoinContext* ctx, CountingSink* sink) {
      Status st = StackTreeJoin(ctx, sa, sd, sink);
      pairs_expected = ctx->stats.output_pairs;
      return st;
    });
    auto [io_adb, skips_adb] = measure([&](JoinContext* ctx, CountingSink* sink) {
      Status st = AdbJoin(ctx, sa, sd, *a_bpt, *d_bpt, sink);
      if (ctx->stats.output_pairs != pairs_expected) {
        std::fprintf(stderr, "ADB+ result mismatch!\n");
      }
      return st;
    });
    auto [io_xr, skips_xr] = measure([&](JoinContext* ctx, CountingSink* sink) {
      Status st = XrStackJoin(ctx, a, d, *a_xr, *d_xr, sink);
      if (ctx->stats.output_pairs != pairs_expected) {
        std::fprintf(stderr, "XR-stack result mismatch!\n");
      }
      return st;
    });

    std::printf("%10d | %12llu %12llu %12llu | %10llu %10llu\n", permille,
                static_cast<unsigned long long>(io_stack),
                static_cast<unsigned long long>(io_adb),
                static_cast<unsigned long long>(io_xr),
                static_cast<unsigned long long>(skips_adb),
                static_cast<unsigned long long>(skips_xr));
  }
  std::printf(
      "\n(expected: STACKTREE flat; ADB+ and XR-stack drop with selectivity,\n"
      " XR-stack lowest at the sparse end — the [8] footnote's claim)\n");
}

}  // namespace
}  // namespace bench
}  // namespace pbitree

int main() {
  pbitree::bench::Run();
  return 0;
}
