// Reproduces Table 2(a) (dataset statistics), Table 2(e) (elapsed time
// for MIN_RGN / SHCJ / VPJ on the eight single-height datasets) and
// Figure 6(a) (improvement ratio of SHCJ and VPJ over MIN_RGN).
//
// Paper shape to verify: SHCJ and VPJ perform similarly; both beat
// MIN_RGN by >20% overall and by >95% (up to ~30x) when one set is
// large and the other small (SLSH, SSLH, SLSL, SSLL).

#include <cstdio>

#include "bench/bench_common.h"
#include "datagen/synthetic.h"
#include "framework/planner.h"

namespace pbitree {
namespace bench {
namespace {

void Run() {
  BenchConfig cfg = BenchConfig::FromEnv();
  std::printf("=== Table 2(a)+2(e) / Figure 6(a): single-height synthetic ===\n");
  std::printf("scale=%g  buffer=%zu pages  sim_io=%.2f ms/page\n\n", cfg.scale,
              cfg.DefaultBufferPages(), cfg.sim_io_ms);

  std::printf("%-8s %10s %10s %10s | %10s %10s %10s | %8s %8s\n", "dataset",
              "|A|", "|D|", "#results", "MIN_RGN", "SHCJ", "VPJ", "impSHCJ",
              "impVPJ");
  PrintRule(104);

  for (const auto& named : CanonicalSyntheticSpecs(cfg.scale, cfg.seed)) {
    if (named.name[0] != 'S') continue;  // single-height group only

    Env env(cfg.DefaultBufferPages());
    auto ds = GenerateSynthetic(env.bm.get(), named.spec);
    if (!ds.ok()) {
      std::fprintf(stderr, "generate %s: %s\n", named.name.c_str(),
                   ds.status().ToString().c_str());
      continue;
    }

    RunOptions opts;
    opts.cold_cache = true;
    opts.work_pages = cfg.DefaultBufferPages();
    opts.simulated_io_ms = cfg.sim_io_ms;

    MinRgnResult min_rgn = MustRunMinRgn(env.bm.get(), ds->a, ds->d, opts);
    RunResult shcj = MustRun(Algorithm::kShcj, env.bm.get(), ds->a, ds->d, opts);
    RunResult vpj = MustRun(Algorithm::kVpj, env.bm.get(), ds->a, ds->d, opts);

    double t_min = min_rgn.best().simulated_seconds;
    std::printf("%-8s %10llu %10llu %10llu | %10s %10s %10s | %8s %8s\n",
                named.name.c_str(),
                static_cast<unsigned long long>(ds->a.num_records()),
                static_cast<unsigned long long>(ds->d.num_records()),
                static_cast<unsigned long long>(shcj.output_pairs),
                FormatSeconds(t_min).c_str(),
                FormatSeconds(shcj.simulated_seconds).c_str(),
                FormatSeconds(vpj.simulated_seconds).c_str(),
                FormatRatio(ImprovementRatio(t_min, shcj.simulated_seconds)).c_str(),
                FormatRatio(ImprovementRatio(t_min, vpj.simulated_seconds)).c_str());
    if (min_rgn.best().output_pairs != shcj.output_pairs ||
        vpj.output_pairs != shcj.output_pairs) {
      std::fprintf(stderr, "RESULT MISMATCH on %s!\n", named.name.c_str());
    }
  }
  std::printf(
      "\n(paper: SHCJ/VPJ similar; both >20%% better than MIN_RGN overall,\n"
      " >95%% better on the mixed-size datasets SLSH/SSLH/SLSL/SSLL)\n");
}

}  // namespace
}  // namespace bench
}  // namespace pbitree

int main() {
  pbitree::bench::Run();
  return 0;
}
