// Ablation for the Section 3.4.1 analysis: naive sort-on-the-fly
// region algorithms cost at least 2*||R||*log_b||R|| extra I/O, while
// the partitioning algorithms stay at ~3(||A||+||D||). The paper's
// claim: whenever b < min(||A||, ||D||) (neither input fits in
// memory), the partitioning algorithms are cheaper.
//
// This bench sweeps the buffer-to-data ratio across the crossover and
// reports measured page I/O (not time) so the analytical comparison is
// explicit. Expected shape: naive STACKTREE approaches the partitioned
// algorithms as b grows (fewer merge passes; with b >= input the sort
// is one in-memory pass) and loses clearly for small b.

#include <cstdio>

#include "bench/bench_common.h"
#include "datagen/synthetic.h"
#include "framework/planner.h"

namespace pbitree {
namespace bench {
namespace {

void Run() {
  BenchConfig cfg = BenchConfig::FromEnv();
  std::printf("=== Ablation (Sec 3.4.1): naive sort vs partitioning I/O ===\n");
  std::printf("scale=%g\n\n", cfg.scale);

  SyntheticSpec spec;
  spec.tree_height = 40;
  spec.a_count = spec.d_count = static_cast<uint64_t>(400000 * cfg.scale);
  if (spec.a_count < 2000) spec.a_count = spec.d_count = 2000;
  spec.a_heights = {10, 11};
  spec.d_heights = {2, 3};
  spec.match_fraction = 0.5;
  spec.seed = cfg.seed;

  std::printf("%8s %8s | %12s %12s %12s | %s\n", "b", "b/pages",
              "IO(naiveST)", "IO(Rollup)", "IO(VPJ)", "winner");
  PrintRule(78);

  for (double ratio : {0.02, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0}) {
    uint64_t input_pages =
        (spec.a_count + HeapFile::kRecordsPerPage - 1) / HeapFile::kRecordsPerPage;
    auto b = static_cast<size_t>(input_pages * ratio);
    if (b < 8) b = 8;

    Env env(b);
    auto ds = GenerateSynthetic(env.bm.get(), spec);
    if (!ds.ok()) {
      std::fprintf(stderr, "generate: %s\n", ds.status().ToString().c_str());
      return;
    }
    RunOptions opts;
    opts.cold_cache = true;
    opts.work_pages = b;

    RunResult st = MustRun(Algorithm::kStackTree, env.bm.get(), ds->a, ds->d, opts);
    RunResult ro = MustRun(Algorithm::kMhcjRollup, env.bm.get(), ds->a, ds->d, opts);
    RunResult vp = MustRun(Algorithm::kVpj, env.bm.get(), ds->a, ds->d, opts);

    uint64_t min_io = std::min({st.TotalIO(), ro.TotalIO(), vp.TotalIO()});
    const char* winner = min_io == st.TotalIO()   ? "naive STACKTREE"
                         : min_io == ro.TotalIO() ? "MHCJ+Rollup"
                                                  : "VPJ";
    std::printf("%8zu %7.0f%% | %12llu %12llu %12llu | %s\n", b, ratio * 100,
                static_cast<unsigned long long>(st.TotalIO()),
                static_cast<unsigned long long>(ro.TotalIO()),
                static_cast<unsigned long long>(vp.TotalIO()), winner);
  }
  std::printf(
      "\n(paper's analysis: partitioning wins whenever neither input fits\n"
      " in the buffer; with ample memory the gap closes)\n");
}

}  // namespace
}  // namespace bench
}  // namespace pbitree

int main() {
  pbitree::bench::Run();
  return 0;
}
