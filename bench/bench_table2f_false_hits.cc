// Reproduces Table 2(f): the number of false hits introduced by the
// MHCJ+Rollup technique on the eight multi-height synthetic datasets
// (key matches of the rolled equijoin rejected by the exact Lemma-1
// filter in the pipeline).
//
// Paper shape to verify: false hits are a modest multiple of the real
// result count on the H datasets and the extra CPU is negligible
// relative to the disk-bound join (the paper's point that rollup's
// false hits are cheap).

#include <cstdio>

#include "bench/bench_common.h"
#include "datagen/synthetic.h"
#include "framework/planner.h"
#include "join/mhcj_rollup.h"

namespace pbitree {
namespace bench {
namespace {

void Run() {
  BenchConfig cfg = BenchConfig::FromEnv();
  std::printf("=== Table 2(f): false hits of MHCJ+Rollup ===\n");
  std::printf("scale=%g  buffer=%zu pages\n\n", cfg.scale,
              cfg.DefaultBufferPages());

  std::printf("%-8s %12s %12s %14s %14s\n", "dataset", "#results",
              "#false-hits", "fh(max-pol)", "fh(median-pol)");
  PrintRule(66);

  for (const auto& named : CanonicalSyntheticSpecs(cfg.scale, cfg.seed)) {
    if (named.name[0] != 'M') continue;

    Env env(cfg.DefaultBufferPages());
    auto ds = GenerateSynthetic(env.bm.get(), named.spec);
    if (!ds.ok()) continue;

    RunOptions opts;
    opts.cold_cache = true;
    opts.work_pages = cfg.DefaultBufferPages();
    opts.simulated_io_ms = cfg.sim_io_ms;

    opts.rollup_policy = RollupHeightPolicy::kMax;
    RunResult max_pol =
        MustRun(Algorithm::kMhcjRollup, env.bm.get(), ds->a, ds->d, opts);
    opts.rollup_policy = RollupHeightPolicy::kMedian;
    RunResult med_pol =
        MustRun(Algorithm::kMhcjRollup, env.bm.get(), ds->a, ds->d, opts);

    std::printf("%-8s %12llu %12llu %14llu %14llu\n", named.name.c_str(),
                static_cast<unsigned long long>(max_pol.output_pairs),
                static_cast<unsigned long long>(max_pol.stats.false_hits),
                static_cast<unsigned long long>(max_pol.stats.false_hits),
                static_cast<unsigned long long>(med_pol.stats.false_hits));
  }
  std::printf(
      "\n(paper reports false hits from ~1 up to ~340k on the 10^6-element\n"
      " datasets; the CPU cost of filtering them is negligible — the\n"
      " median policy trades fewer false hits for extra partitions)\n");
}

}  // namespace
}  // namespace bench
}  // namespace pbitree

int main() {
  pbitree::bench::Run();
  return 0;
}
