// Reproduces Figure 6(g): scalability on single-height datasets of
// k * 5*10^4 (scaled) elements, k = 1..8.

#include "bench/bench_common.h"

int main() {
  pbitree::bench::RunScalabilitySweep(/*multi_height=*/false);
  return 0;
}
