#include "bench/bench_common.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "datagen/synthetic.h"

namespace pbitree {
namespace bench {

BenchConfig BenchConfig::FromEnv() {
  BenchConfig c;
  // Checked reads: a knob set to nonsense (scale <= 0, threads == 0,
  // negative latency) aborts with the accepted range instead of
  // producing an empty dataset or a silently-clamped thread count.
  c.scale = EnvDoubleChecked("PBITREE_BENCH_SCALE", c.scale, 1e-6, 1e3);
  c.seed = static_cast<uint64_t>(
      EnvInt64Checked("PBITREE_BENCH_SEED", 42, 0, INT64_MAX));
  c.sim_io_ms = EnvDoubleChecked("PBITREE_SIM_IO_MS", c.sim_io_ms, 0.0, 1e6);
  c.threads =
      static_cast<size_t>(EnvInt64Checked("PBITREE_THREADS", 1, 1, 4096));
  return c;
}

size_t BenchConfig::DefaultBufferPages() const {
  // Paper: 500 pages against 10^6-element sets (~3922 pages), i.e. a
  // buffer-to-data ratio of ~12.7%.
  auto pages = static_cast<size_t>(500 * scale);
  return pages < 16 ? 16 : pages;
}

Env::Env(size_t pool_pages)
    : disk(DiskManager::OpenInMemory()),
      bm(std::make_unique<BufferManager>(disk.get(), pool_pages + 4)) {}

namespace {

/// PBITREE_METRICS_JSON=<path> sink: one JSON object per measured
/// operation, appended as a line (JSONL). Key set and order are fixed
/// by RunResult + MetricsSnapshot::ToJson, so downstream tooling (and
/// the CI determinism check) can diff runs line by line.
///
/// Several bench processes may share one sink file (the CI smoke job
/// runs them concurrently), so each record goes out as exactly one
/// write(2) on an O_APPEND descriptor: POSIX appends are atomic per
/// write, which keeps lines whole — no interleaved partial records —
/// where stdio's buffered fprintf could flush a record in pieces.
void MaybeDumpMetrics(const char* op, const RunResult& r) {
  static const char* path = std::getenv("PBITREE_METRICS_JSON");
  if (path == nullptr || *path == '\0') return;

  char head[256];
  std::snprintf(head, sizeof(head),
                "{\"op\":\"%s\",\"algorithm\":\"%s\",\"page_reads\":%llu,"
                "\"page_writes\":%llu,\"output_pairs\":%llu,"
                "\"wall_seconds\":%.6f,\"metrics\":",
                op, AlgorithmName(r.algorithm),
                static_cast<unsigned long long>(r.page_reads),
                static_cast<unsigned long long>(r.page_writes),
                static_cast<unsigned long long>(r.output_pairs),
                r.wall_seconds);
  std::string line = head;
  line += r.metrics.ToJson();
  line += "}\n";

  int fd = ::open(path, O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd < 0) {
    std::fprintf(stderr, "warning: cannot open PBITREE_METRICS_JSON file %s\n",
                 path);
    return;
  }
  const char* p = line.data();
  size_t n = line.size();
  while (n > 0) {
    ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      std::fprintf(stderr, "warning: PBITREE_METRICS_JSON write failed: %s\n",
                   std::strerror(errno));
      break;
    }
    p += w;
    n -= static_cast<size_t>(w);
  }
  ::close(fd);
}

}  // namespace

RunResult MustRun(Algorithm alg, BufferManager* bm, const ElementSet& a,
                  const ElementSet& d, const RunOptions& opts) {
  CountingSink sink;
  auto run = RunJoin(alg, bm, a, d, &sink, opts);
  if (!run.ok()) {
    std::fprintf(stderr, "FATAL: %s failed: %s\n", AlgorithmName(alg),
                 run.status().ToString().c_str());
    std::abort();
  }
  MaybeDumpMetrics("run", *run);
  return *run;
}

MinRgnResult MustRunMinRgn(BufferManager* bm, const ElementSet& a,
                           const ElementSet& d, const RunOptions& opts) {
  auto run = RunMinRgn(bm, a, d, opts);
  if (!run.ok()) {
    std::fprintf(stderr, "FATAL: MIN_RGN failed: %s\n",
                 run.status().ToString().c_str());
    std::abort();
  }
  MaybeDumpMetrics("min_rgn", run->inljn);
  MaybeDumpMetrics("min_rgn", run->stacktree);
  MaybeDumpMetrics("min_rgn", run->adb);
  return *run;
}

double ImprovementRatio(double t_ref, double t_alg) {
  if (t_ref <= 0.0) return 0.0;
  return (t_ref - t_alg) / t_ref;
}

void PrintRule(int width) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

void PrintCell(const std::string& s, int width) {
  std::printf("%-*s", width, s.c_str());
}

std::string FormatSeconds(double s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", s);
  return buf;
}

std::string FormatRatio(double r) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%", r * 100.0);
  return buf;
}

void RunBufferSweep(const std::string& dataset, Algorithm partitioned) {
  BenchConfig cfg = BenchConfig::FromEnv();
  std::printf("=== Figure 6(%s): elapsed time vs buffer size, %s ===\n",
              dataset == "SLLL" ? "e" : "f", dataset.c_str());
  std::printf("scale=%g  sim_io=%.2f ms/page\n\n", cfg.scale, cfg.sim_io_ms);

  // The P axis only means something when P% of the smaller input stays
  // above the algorithms' minimal pool, so this figure floors the
  // dataset at 200k elements regardless of the global scale (cheap:
  // the cost model is counted I/O, not wall time).
  double sweep_scale = std::max(cfg.scale, 0.2);
  auto spec = CanonicalSpecByName(dataset, sweep_scale, cfg.seed);
  if (!spec.ok()) {
    std::fprintf(stderr, "unknown dataset %s\n", dataset.c_str());
    return;
  }
  std::printf("dataset scale for this sweep: %g\n\n", sweep_scale);

  std::printf("%-7s %8s | %10s %10s %10s\n", "P", "buffer", "MIN_RGN",
              AlgorithmName(partitioned), "VPJ");
  PrintRule(54);

  const double percents[] = {0.5, 1, 2, 4, 8, 16};
  for (double p : percents) {
    // One fresh environment per point: the pool size is the variable.
    // Work pages = P% of the smaller set's page count (the paper's
    // definition), floored at the algorithms' minimum.
    uint64_t min_records = std::min(spec->a_count, spec->d_count);
    uint64_t min_pages =
        (min_records + HeapFile::kRecordsPerPage - 1) / HeapFile::kRecordsPerPage;
    auto pages = static_cast<size_t>(min_pages * p / 100.0);
    if (pages < 8) pages = 8;

    Env env(pages);
    auto ds = GenerateSynthetic(env.bm.get(), *spec);
    if (!ds.ok()) {
      std::fprintf(stderr, "generate: %s\n", ds.status().ToString().c_str());
      return;
    }
    RunOptions opts;
    opts.cold_cache = true;
    opts.work_pages = pages;
    opts.simulated_io_ms = cfg.sim_io_ms;
    opts.threads = cfg.threads;

    MinRgnResult min_rgn = MustRunMinRgn(env.bm.get(), ds->a, ds->d, opts);
    RunResult part = MustRun(partitioned, env.bm.get(), ds->a, ds->d, opts);
    RunResult vpj = MustRun(Algorithm::kVpj, env.bm.get(), ds->a, ds->d, opts);

    char plabel[16];
    std::snprintf(plabel, sizeof(plabel), "%.1f%%", p);
    std::printf("%-7s %8zu | %10s %10s %10s\n", plabel, pages,
                FormatSeconds(min_rgn.best().simulated_seconds).c_str(),
                FormatSeconds(part.simulated_seconds).c_str(),
                FormatSeconds(vpj.simulated_seconds).c_str());
  }
  std::printf(
      "\n(paper: all degrade at P=0.5%%; the partitioning algorithms work\n"
      " well from P~1%% and keep improving with memory, while MIN_RGN\n"
      " flattens beyond P=2%%)\n");
}

void RunScalabilitySweep(bool multi_height) {
  BenchConfig cfg = BenchConfig::FromEnv();
  std::printf("=== Figure 6(%s): scalability, %s-height datasets ===\n",
              multi_height ? "h" : "g", multi_height ? "multiple" : "single");
  std::printf("scale=%g  buffer=%zu pages  sim_io=%.2f ms/page\n\n", cfg.scale,
              cfg.DefaultBufferPages(), cfg.sim_io_ms);

  Algorithm horizontal =
      multi_height ? Algorithm::kMhcjRollup : Algorithm::kShcj;
  std::printf("%10s %10s | %10s %10s %10s\n", "elements", "#results",
              "MIN_RGN", AlgorithmName(horizontal), "VPJ");
  PrintRule(60);

  // The paper's unit B = 5*10^4 elements per step, k = 1..8.
  const auto unit = static_cast<uint64_t>(50000 * cfg.scale * 5);
  for (int k = 1; k <= 8; ++k) {
    SyntheticSpec spec;
    spec.tree_height = 40;
    spec.a_count = spec.d_count = unit * k;
    spec.match_fraction = 0.5;
    spec.seed = cfg.seed + k;
    if (multi_height) {
      spec.a_heights = {10, 11, 12};
      spec.d_heights = {2, 3, 4, 5};
    } else {
      spec.a_heights = {10};
      spec.d_heights = {2};
    }

    Env env(cfg.DefaultBufferPages());
    auto ds = GenerateSynthetic(env.bm.get(), spec);
    if (!ds.ok()) {
      std::fprintf(stderr, "generate k=%d: %s\n", k,
                   ds.status().ToString().c_str());
      return;
    }
    RunOptions opts;
    opts.cold_cache = true;
    opts.work_pages = cfg.DefaultBufferPages();
    opts.simulated_io_ms = cfg.sim_io_ms;
    opts.threads = cfg.threads;

    MinRgnResult min_rgn = MustRunMinRgn(env.bm.get(), ds->a, ds->d, opts);
    RunResult part = MustRun(horizontal, env.bm.get(), ds->a, ds->d, opts);
    RunResult vpj = MustRun(Algorithm::kVpj, env.bm.get(), ds->a, ds->d, opts);

    std::printf("%10llu %10llu | %10s %10s %10s\n",
                static_cast<unsigned long long>(spec.a_count),
                static_cast<unsigned long long>(part.output_pairs),
                FormatSeconds(min_rgn.best().simulated_seconds).c_str(),
                FormatSeconds(part.simulated_seconds).c_str(),
                FormatSeconds(vpj.simulated_seconds).c_str());
  }
  std::printf(
      "\n(paper: every algorithm scales linearly in the data size and the\n"
      " partitioning algorithms stay consistently below MIN_RGN)\n");
}

}  // namespace bench
}  // namespace pbitree
